"""Foreign-key join paths and candidate-preserving value mapping.

The data-aware policy must evaluate attributes that live in *other*
tables than the entity being identified ("if a customer does not recall
the exact movie title, it might be beneficial to ask for actors appearing
in the movie", Section 4).  For that we need, per candidate root row, the
set of values an attribute takes when the attribute's table is joined in
along the FK path.

:class:`JoinPlanner` finds shortest FK paths from the root table;
:func:`map_values` walks one path and returns ``root_row_id -> frozenset
of attribute values``.  One-to-many hops (reverse FK edges) naturally
yield multiple values per root row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.types import coerce
from repro.errors import PolicyError

__all__ = ["JoinStep", "JoinPath", "JoinPlanner", "map_values"]


@dataclass(frozen=True)
class JoinStep:
    """One hop: match ``source_column`` values against ``target_column``.

    ``source_column``/``target_column`` are bare column names in the
    current table and the next table respectively.
    """

    from_table: str
    to_table: str
    source_column: str
    target_column: str


@dataclass(frozen=True)
class JoinPath:
    """An ordered chain of join steps from the root table to a target table."""

    root: str
    steps: tuple[JoinStep, ...]

    @property
    def target(self) -> str:
        return self.steps[-1].to_table if self.steps else self.root

    @property
    def length(self) -> int:
        return len(self.steps)


class JoinPlanner:
    """Computes and caches FK join paths from one root table."""

    def __init__(self, catalog: Catalog, root: str) -> None:
        self._catalog = catalog
        self.root = root
        self._paths: dict[str, JoinPath | None] = {root: JoinPath(root, ())}

    def path_to(self, table: str) -> JoinPath | None:
        """Shortest FK path from the root to ``table`` (``None`` if absent)."""
        if table in self._paths:
            return self._paths[table]
        node_path = self._catalog.join_path(self.root, table)
        if node_path is None:
            self._paths[table] = None
            return None
        steps: list[JoinStep] = []
        for left, right in zip(node_path, node_path[1:]):
            link = self._catalog.fk_between(left, right)
            if link is None:  # pragma: no cover - join_path implies an edge
                raise PolicyError(f"no foreign key between {left} and {right}")
            fk_table, fk = link
            if fk_table == left:
                # left has the FK pointing at right.
                steps.append(JoinStep(left, right, fk.column, fk.target_column))
            else:
                # right references left: reverse hop (one-to-many).
                steps.append(JoinStep(left, right, fk.target_column, fk.column))
        path = JoinPath(self.root, tuple(steps))
        self._paths[table] = path
        return path


def map_values(
    database: Database,
    path: JoinPath,
    attribute: ColumnRef,
    root_row_ids: list[int],
) -> dict[int, frozenset]:
    """Per root row, the set of ``attribute`` values reachable along ``path``.

    Rows whose chain dead-ends (NULL FK, no referencing rows) map to an
    empty set.  NULL attribute values are dropped from the result sets.

    Each hop picks its join strategy like the query engine's planner: a
    frontier wider than the next table builds one shared probe map (the
    HashJoin operator's build side); a narrow frontier against an
    indexed column probes the hash index per row instead.
    """
    if attribute.table != path.target:
        raise PolicyError(
            f"attribute {attribute} does not live on path target {path.target!r}"
        )
    from repro.db.engine import build_probe_map

    root_table = database.table(path.root)
    # frontier: root_row_id -> set of current-table row ids
    frontier: dict[int, set[int]] = {rid: {rid} for rid in root_row_ids}
    current = root_table
    for step in path.steps:
        next_table = database.table(step.to_table)
        dtype = next_table.schema.column(step.target_column).dtype
        frontier_size = sum(len(ids) for ids in frontier.values())
        # The same build-vs-probe decision the planner makes for joins,
        # priced with the statistics catalog: probing pays one index
        # lookup per expected match per frontier row, building pays one
        # pass over the next table.  A narrow frontier against a
        # low-fanout column probes; a wide frontier (or a fat fanout,
        # e.g. a junction table) amortises a single build pass.
        use_index = (
            next_table.has_index(step.target_column)
            and frontier_size * database.statistics.matches_per_key(
                step.to_table, step.target_column
            ) < len(next_table)
        )
        probe = (
            None if use_index
            else build_probe_map(next_table, step.target_column)
        )
        next_frontier: dict[int, set[int]] = {}
        for root_id, row_ids in frontier.items():
            matched: set[int] = set()
            for row_id in row_ids:
                value = current.row_view(row_id).get(step.source_column)
                if value is None:
                    continue
                if probe is None:
                    matched.update(
                        next_table.lookup(step.target_column, value)
                    )
                else:
                    matched.update(probe.get(coerce(value, dtype), ()))
            next_frontier[root_id] = matched
        frontier = next_frontier
        current = next_table
    result: dict[int, frozenset] = {}
    for root_id, row_ids in frontier.items():
        values = set()
        for row_id in row_ids:
            value = current.row_view(row_id).get(attribute.column)
            if value is not None:
                values.add(value)
        result[root_id] = frozenset(values)
    return result
