"""Attribute scoring: informativeness x user awareness.

"The best information (i.e., a so-called slot) to request depends on
(i) the probability that the user knows a certain attribute and (ii) how
much this attribute narrows down the current set of candidates"
(Section 2).  The scorer multiplies the two:

``score(a) = P(user knows a) * informativeness(a | candidates)``

Informativeness defaults to the *normalised entropy* of the attribute
over the current candidates (the paper: "we choose the attribute with
the highest entropy"); distinct-count and Gini measures are provided for
the ablation benchmarks.  Multi-valued joined attributes (one screening,
several actors) contribute each of their values with fractional weight.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any

from repro.dataaware.awareness import UserAwarenessModel
from repro.dataaware.candidates import CandidateSet
from repro.db.catalog import ColumnRef
from repro.errors import PolicyError

__all__ = [
    "InformativenessMeasure",
    "AttributeScore",
    "AttributeScorer",
    "weighted_entropy",
]


class InformativenessMeasure(enum.Enum):
    """How to quantify an attribute's power to split the candidate set."""

    ENTROPY = "entropy"
    DISTINCT_COUNT = "distinct_count"
    GINI = "gini"


@dataclass(frozen=True)
class AttributeScore:
    """Scored attribute: final score plus its two factors."""

    attribute: ColumnRef
    score: float
    informativeness: float
    awareness: float


def weighted_entropy(weights_by_value: dict[Any, float]) -> float:
    """Shannon entropy (bits) of a weighted value distribution."""
    total = sum(weights_by_value.values())
    if total <= 0:
        return 0.0
    result = 0.0
    for weight in weights_by_value.values():
        if weight <= 0:
            continue
        p = weight / total
        result -= p * math.log2(p)
    return result


_UNKNOWN = object()  # category for candidates with no value for the attribute


class AttributeScorer:
    """Scores candidate attributes for the next request."""

    def __init__(
        self,
        awareness: UserAwarenessModel,
        measure: InformativenessMeasure = InformativenessMeasure.ENTROPY,
        use_awareness: bool = True,
    ) -> None:
        self._awareness = awareness
        self._measure = measure
        self._use_awareness = use_awareness

    # ------------------------------------------------------------------
    def value_distribution(
        self, candidates: CandidateSet, attribute: ColumnRef
    ) -> dict[Any, float]:
        """Weighted value distribution of ``attribute`` over the candidates.

        Each candidate contributes total weight 1, split uniformly over
        its (possibly joined, possibly multiple) values; candidates
        without a value contribute to a dedicated *unknown* category.
        """
        values = candidates.values_for(attribute)
        weights: dict[Any, float] = {}
        for rid in candidates.row_ids:
            value_set = values.get(rid, frozenset())
            if not value_set:
                weights[_UNKNOWN] = weights.get(_UNKNOWN, 0.0) + 1.0
                continue
            share = 1.0 / len(value_set)
            for value in value_set:
                weights[value] = weights.get(value, 0.0) + share
        return weights

    def informativeness(
        self, candidates: CandidateSet, attribute: ColumnRef
    ) -> float:
        """Normalised informativeness in [0, 1]."""
        n = len(candidates)
        if n <= 1:
            return 0.0
        weights = self.value_distribution(candidates, attribute)
        if self._measure is InformativenessMeasure.ENTROPY:
            return weighted_entropy(weights) / math.log2(n)
        if self._measure is InformativenessMeasure.DISTINCT_COUNT:
            distinct = len([v for v in weights if v is not _UNKNOWN])
            return min(distinct, n) / n
        if self._measure is InformativenessMeasure.GINI:
            total = sum(weights.values())
            gini = 1.0 - sum((w / total) ** 2 for w in weights.values())
            max_gini = 1.0 - 1.0 / n
            return gini / max_gini if max_gini > 0 else 0.0
        raise PolicyError(f"unknown measure {self._measure!r}")  # pragma: no cover

    def score(self, candidates: CandidateSet, attribute: ColumnRef) -> AttributeScore:
        informativeness = self.informativeness(candidates, attribute)
        awareness = (
            self._awareness.probability(attribute) if self._use_awareness else 1.0
        )
        return AttributeScore(
            attribute=attribute,
            score=awareness * informativeness,
            informativeness=informativeness,
            awareness=awareness,
        )

    def rank(
        self, candidates: CandidateSet, attributes: list[ColumnRef]
    ) -> list[AttributeScore]:
        """All attributes scored, best first (ties broken by name)."""
        scores = [self.score(candidates, a) for a in attributes]
        scores.sort(key=lambda s: (-s.score, str(s.attribute)))
        return scores

    def expected_candidates_after(
        self, candidates: CandidateSet, attribute: ColumnRef
    ) -> float:
        """Expected candidate-set size after asking for ``attribute``.

        Assumes the user's value is drawn from the candidate distribution;
        used by the evaluation harness to sanity-check the entropy scores.
        """
        n = len(candidates)
        if n == 0:
            return 0.0
        weights = self.value_distribution(candidates, attribute)
        total = sum(weights.values())
        return sum(w * w for w in weights.values()) / total
