"""User-awareness model: how likely is the user to know an attribute?

"Informative attributes are not useful if the user is not aware of them"
(Section 4).  CAT combines two signals:

1. developer annotations — a prior per attribute (IDs ~0), and
2. online learning — "we learn from interactions with the conversational
   agent which attributes the users are likely to know".

We model each attribute's awareness as a Beta–Bernoulli: the annotation
prior seeds pseudo-counts, every observation ("user provided a value" /
"user said they don't know") updates them, and the posterior mean is the
awareness probability used by the scorer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation import SchemaAnnotations
from repro.db.catalog import ColumnRef
from repro.errors import PolicyError

__all__ = ["AwarenessEstimate", "UserAwarenessModel"]


@dataclass(frozen=True)
class AwarenessEstimate:
    """Posterior summary for one attribute."""

    attribute: ColumnRef
    probability: float
    observations: int


class UserAwarenessModel:
    """Beta–Bernoulli awareness estimates seeded from schema annotations."""

    def __init__(
        self,
        annotations: SchemaAnnotations,
        prior_strength: float = 10.0,
    ) -> None:
        if prior_strength <= 0:
            raise PolicyError("prior_strength must be positive")
        self._annotations = annotations
        self._prior_strength = prior_strength
        # attribute -> [successes, failures] *observed* counts.
        self._counts: dict[ColumnRef, list[int]] = {}

    # ------------------------------------------------------------------
    def probability(self, attribute: ColumnRef) -> float:
        """Posterior mean P(user knows ``attribute``)."""
        prior = self._annotations.awareness_prior(attribute.table, attribute.column)
        alpha = prior * self._prior_strength
        beta = (1.0 - prior) * self._prior_strength
        knew, unknown = self._counts.get(attribute, (0, 0))
        return (alpha + knew) / (alpha + beta + knew + unknown)

    def estimate(self, attribute: ColumnRef) -> AwarenessEstimate:
        knew, unknown = self._counts.get(attribute, (0, 0))
        return AwarenessEstimate(
            attribute=attribute,
            probability=self.probability(attribute),
            observations=knew + unknown,
        )

    # ------------------------------------------------------------------
    def observe(self, attribute: ColumnRef, user_knew: bool) -> None:
        """Record one interaction outcome for ``attribute``."""
        counts = self._counts.setdefault(attribute, [0, 0])
        counts[0 if user_knew else 1] += 1

    def observed_attributes(self) -> list[ColumnRef]:
        return sorted(self._counts)

    def reset(self) -> None:
        """Forget all online observations (annotation priors remain)."""
        self._counts.clear()

    # ------------------------------------------------------------------
    # Persistence across sessions ("the distribution of which attributes
    # users were aware of in previous sessions", Section 4)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list[int]]:
        """JSON-serialisable observation counts."""
        return {str(ref): list(counts) for ref, counts in self._counts.items()}

    def load_observations(self, payload: dict[str, list[int]]) -> None:
        """Merge previously saved observation counts into this model."""
        for key, counts in payload.items():
            table, __, column = key.partition(".")
            if not column:
                raise PolicyError(f"malformed awareness key {key!r}")
            ref = ColumnRef(table, column)
            current = self._counts.setdefault(ref, [0, 0])
            current[0] += int(counts[0])
            current[1] += int(counts[1])
