"""The interactive entity-identification loop.

Drives one episode of "narrow the candidate set until the entity is
unique": the policy proposes an attribute, the caller (the live agent or
a simulated user) answers with a value or "don't know", the session
refines the candidate set.  When the set is small enough the agent stops
asking and presents a choice list instead — the demo's "asks the user to
choose from a list of screenings fulfilling the preferences they have
expressed" (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.dataaware.candidates import CandidateSet
from repro.dataaware.policies import SlotSelectionPolicy
from repro.db.catalog import ColumnRef
from repro.errors import DialogueError

__all__ = ["IdentificationStatus", "IdentificationOutcome", "IdentificationSession"]


class IdentificationStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    UNIQUE = "unique"            # exactly one candidate remains
    CHOICE_LIST = "choice_list"  # few candidates; present a list
    NO_MATCH = "no_match"        # constraints eliminated everything
    EXHAUSTED = "exhausted"      # policy has nothing left to ask


@dataclass(frozen=True)
class IdentificationOutcome:
    """Summary of a finished identification episode."""

    status: IdentificationStatus
    turns: int
    questions_asked: int
    entity_key: Any | None
    remaining: int


class IdentificationSession:
    """One episode of identifying an entity via attribute questions."""

    def __init__(
        self,
        candidates: CandidateSet,
        policy: SlotSelectionPolicy,
        key_column: str,
        choice_list_size: int = 3,
        max_questions: int = 25,
    ) -> None:
        if choice_list_size < 1:
            raise DialogueError("choice_list_size must be >= 1")
        self.candidates = candidates
        self.policy = policy
        self.key_column = key_column
        self.choice_list_size = choice_list_size
        self.max_questions = max_questions
        self.asked: set[ColumnRef] = set()
        self.questions_asked = 0
        self.turns = 0
        self._pending: ColumnRef | None = None
        self._status = IdentificationStatus.IN_PROGRESS
        policy.reset()
        self._refresh_status()

    # ------------------------------------------------------------------
    @property
    def status(self) -> IdentificationStatus:
        return self._status

    @property
    def finished(self) -> bool:
        return self._status is not IdentificationStatus.IN_PROGRESS

    @property
    def pending_question(self) -> ColumnRef | None:
        return self._pending

    # ------------------------------------------------------------------
    def next_question(self) -> ColumnRef | None:
        """Pick the next attribute to request (None when finished)."""
        if self.finished:
            return None
        if self._pending is not None:
            return self._pending
        attribute = self.policy.next_attribute(self.candidates, self.asked)
        if attribute is None:
            self._finish_without_question()
            return None
        self._pending = attribute
        self.asked.add(attribute)
        self.questions_asked += 1
        self.turns += 1
        return attribute

    def answer(self, value: Any) -> None:
        """The user provided ``value`` for the pending attribute."""
        attribute = self._require_pending()
        refined = self.candidates.refine(attribute, value)
        if refined.is_empty:
            # Contradictory information: keep the previous candidates but
            # record that the value did not help (the agent re-asks).
            self.policy.observe(attribute, user_knew=True)
            self._pending = None
            self._refresh_status()
            return
        self.candidates = refined
        self.policy.observe(attribute, user_knew=True)
        self._pending = None
        self._refresh_status()

    def volunteer(self, attribute: ColumnRef, value: Any) -> bool:
        """Apply information the user offered without being asked.

        Returns False (and leaves the candidates untouched) when the value
        contradicts every remaining candidate.  Volunteered values do not
        cost a dialogue turn and do not update the awareness model.
        """
        refined = self.candidates.refine(attribute, value)
        if refined.is_empty:
            return False
        self.candidates = refined
        self.asked.add(attribute)
        if self._pending is not None and self._pending != attribute:
            # The open question was computed for the old candidate set; it
            # is stale now.  Withdraw it (it may be re-asked later if it is
            # still the most informative attribute).
            self.asked.discard(self._pending)
        self._pending = None
        self._refresh_status()
        return True

    def prune_stale_candidates(self) -> bool:
        """Revalidate the candidate snapshot against the live table.

        Called at turn boundaries by the agent: a concurrent session's
        committed delete may have removed candidate rows between this
        session's turns.  Returns True when anything was dropped (the
        status is refreshed accordingly, e.g. to NO_MATCH or UNIQUE).
        """
        pruned = self.candidates.prune_missing()
        if pruned is self.candidates:
            return False
        self.candidates = pruned
        self._refresh_status()
        return True

    def dont_know(self) -> None:
        """The user does not know the pending attribute."""
        attribute = self._require_pending()
        self.policy.observe(attribute, user_knew=False)
        self._pending = None
        self._refresh_status()

    def choose(self, key_value: Any) -> None:
        """The user picked one entry from the presented choice list."""
        if self._status is not IdentificationStatus.CHOICE_LIST:
            raise DialogueError("no choice list is being presented")
        key = ColumnRef(self.candidates.table, self.key_column)
        refined = self.candidates.refine(key, key_value)
        if refined.is_empty:
            raise DialogueError(f"{key_value!r} is not among the choices")
        self.candidates = refined
        self._status = IdentificationStatus.UNIQUE

    # ------------------------------------------------------------------
    def choice_list(self) -> list[dict[str, Any]]:
        """The rows to present when status is CHOICE_LIST."""
        return self.candidates.rows()

    def outcome(self) -> IdentificationOutcome:
        entity_key = None
        if self._status is IdentificationStatus.UNIQUE:
            entity_key = self.candidates.the_row()[self.key_column]
        return IdentificationOutcome(
            status=self._status,
            turns=self.turns,
            questions_asked=self.questions_asked,
            entity_key=entity_key,
            remaining=len(self.candidates),
        )

    # ------------------------------------------------------------------
    def _require_pending(self) -> ColumnRef:
        if self._pending is None:
            raise DialogueError("no question is pending")
        return self._pending

    def _refresh_status(self) -> None:
        n = len(self.candidates)
        if n == 0:
            self._status = IdentificationStatus.NO_MATCH
        elif n == 1:
            self._status = IdentificationStatus.UNIQUE
        elif n <= self.choice_list_size:
            # Presenting the list costs one more turn.
            self._status = IdentificationStatus.CHOICE_LIST
            self.turns += 1
        elif self.questions_asked >= self.max_questions:
            self._status = IdentificationStatus.EXHAUSTED
        else:
            self._status = IdentificationStatus.IN_PROGRESS

    def _finish_without_question(self) -> None:
        """Policy gave up: present whatever remains as a (long) list."""
        if len(self.candidates) > 1:
            self._status = IdentificationStatus.CHOICE_LIST
            self.turns += 1
        else:
            self._refresh_status()
