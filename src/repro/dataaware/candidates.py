"""Candidate-set tracking for entity identification.

"We ... explicitly keep track of the candidates (e.g., the screenings
that match the previous user preferences) and request the next attribute
based on the data distribution of the candidates" (Section 4).

A :class:`CandidateSet` is an immutable snapshot: the root entity table,
the surviving root row ids, and the constraints applied so far.  Refining
with an attribute/value pair produces a *new* candidate set, so dialogue
state can be rewound cheaply (e.g. when the user corrects themselves).

Matching semantics: equality after type coercion; for text attributes a
case-insensitive comparison with optional fuzzy tolerance (edit distance)
so that misspelled user input still narrows candidates — the demo video's
"corrects misspellings" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dataaware.caching import AttributeValueCache
from repro.dataaware.join_graph import JoinPath, JoinPlanner, map_values
from repro.db.api import Param, select
from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.query import Predicate, eq
from repro.db.types import DataType, TypeMismatchError, coerce
from repro.errors import PolicyError
from repro.textutil import damerau_levenshtein

__all__ = ["Constraint", "CandidateSet"]


@dataclass(frozen=True)
class Constraint:
    """One applied filter: ``attribute == value`` (with text tolerance)."""

    attribute: ColumnRef
    value: Any


def _text_matches_exact(candidate: str, needle: str) -> bool:
    left = candidate.strip().lower()
    right = needle.strip().lower()
    return left == right or right in left


def _is_identifier_token(token: str) -> bool:
    """Emails, codes and numbers must never fuzzy-match."""
    return "@" in token or any(char.isdigit() for char in token)


def _text_matches(candidate: str, needle: str, fuzzy: float) -> bool:
    """Tolerant text match: exact, substring, or token-wise fuzzy.

    Fuzziness is applied per token with an edit budget (one Damerau edit
    for tokens up to eight characters, two beyond that).  Tokens of three
    characters or fewer, and identifier-like tokens (emails, anything
    with digits), must match exactly — otherwise "room A" would fuzzily
    match "room B" and one email would match a colleague's.
    ``fuzzy >= 1.0`` disables fuzziness entirely.
    """
    left = candidate.strip().lower()
    right = needle.strip().lower()
    if _text_matches_exact(left, right):
        return True
    if fuzzy >= 1.0:
        return False
    candidate_tokens = left.split()
    for token in right.split():
        if len(token) <= 3 or _is_identifier_token(token):
            if token not in candidate_tokens:
                return False
            continue
        budget = 1 if len(token) <= 8 else 2
        best = min(
            (damerau_levenshtein(token, other) for other in candidate_tokens),
            default=budget + 1,
        )
        if best > budget:
            return False
    return True


class CandidateSet:
    """Immutable set of candidate root rows plus applied constraints."""

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        table: str,
        row_ids: tuple[int, ...],
        constraints: tuple[Constraint, ...] = (),
        fuzzy_threshold: float = 0.82,
        planner: JoinPlanner | None = None,
        shared_cache: AttributeValueCache | None = None,
    ) -> None:
        self._database = database
        self._catalog = catalog
        self.table = table
        self.row_ids = row_ids
        self.constraints = constraints
        self.fuzzy_threshold = fuzzy_threshold
        self._shared_cache = shared_cache
        if planner is not None:
            self._planner = planner
        elif shared_cache is not None:
            self._planner = shared_cache.planner(table)
        else:
            self._planner = JoinPlanner(catalog, table)
        self._value_cache: dict[ColumnRef, dict[int, frozenset]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls,
        database: Database,
        catalog: Catalog,
        table: str,
        fuzzy_threshold: float = 0.82,
        shared_cache: AttributeValueCache | None = None,
        where: Predicate | None = None,
    ) -> "CandidateSet":
        """Candidates of ``table``, optionally pre-filtered by ``where``.

        With a predicate, seeding executes through the database's
        shared connection (and therefore the prepared-plan cache —
        repeated seeds of the same constraint shape reuse one compiled
        plan): the access path pushes the constraints into hash/ordered
        indexes instead of materialising every row id and filtering
        afterwards.
        """
        if where is None:
            row_ids = tuple(database.table(table).row_ids())
        else:
            result = database.default_connection.execute(
                select(table).where(where)
            )
            row_ids = tuple(result.row_ids())
        return cls(database, catalog, table, row_ids,
                   fuzzy_threshold=fuzzy_threshold, shared_cache=shared_cache)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.row_ids)

    @property
    def is_unique(self) -> bool:
        return len(self.row_ids) == 1

    @property
    def is_empty(self) -> bool:
        return not self.row_ids

    def rows(self) -> list[dict[str, Any]]:
        table = self._database.table(self.table)
        return [table.get(rid) for rid in self.row_ids]

    def key_values(self, key_column: str) -> list[Any]:
        """Values of the entity key over the surviving candidates."""
        table = self._database.table(self.table)
        return [table.get(rid)[key_column] for rid in self.row_ids]

    def the_row(self) -> dict[str, Any]:
        """The single remaining candidate row."""
        if not self.is_unique:
            raise PolicyError(
                f"candidate set is not unique ({len(self)} candidates)"
            )
        return self._database.table(self.table).get(self.row_ids[0])

    # ------------------------------------------------------------------
    # Attribute values (with join expansion)
    # ------------------------------------------------------------------
    def join_path(self, attribute: ColumnRef) -> JoinPath | None:
        return self._planner.path_to(attribute.table)

    def values_for(self, attribute: ColumnRef) -> dict[int, frozenset]:
        """Per candidate root row, the value set of ``attribute``.

        For the root table itself this is just the column; for attributes
        in FK-reachable tables the values are collected along the join
        path.  Results are cached per candidate set.
        """
        cached = self._value_cache.get(attribute)
        if cached is not None:
            return cached
        if self._shared_cache is not None:
            full = self._shared_cache.full_map(self.table, attribute)
            result = {rid: full.get(rid, frozenset()) for rid in self.row_ids}
            self._value_cache[attribute] = result
            return result
        if attribute.table == self.table:
            table = self._database.table(self.table)
            result = {}
            for rid in self.row_ids:
                value = table.get(rid).get(attribute.column)
                result[rid] = (
                    frozenset((value,)) if value is not None else frozenset()
                )
        else:
            path = self.join_path(attribute)
            if path is None:
                raise PolicyError(
                    f"no foreign-key path from {self.table!r} to "
                    f"{attribute.table!r}"
                )
            result = map_values(
                self._database, path, attribute, list(self.row_ids)
            )
        self._value_cache[attribute] = result
        return result

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self, attribute: ColumnRef, value: Any) -> "CandidateSet":
        """New candidate set keeping rows compatible with ``attribute == value``.

        For text attributes, candidates matching *exactly* take precedence:
        fuzzy matches only survive when no exact match exists (your own
        email must not keep a near-identical colleague in the set).
        """
        dtype = self._catalog.column_type(attribute)
        try:
            needle = coerce(value, dtype)
        except TypeMismatchError:
            # Unparseable user value: treat as text comparison if possible.
            needle = value
        narrowed = self._index_refine(attribute, needle, dtype)
        if narrowed is not None:
            return self._refined(narrowed, attribute, needle)
        values = self.values_for(attribute)
        if dtype is DataType.TEXT and isinstance(needle, str):
            exact = tuple(
                rid
                for rid in self.row_ids
                if any(
                    isinstance(v, str) and _text_matches_exact(v, needle)
                    for v in values[rid]
                )
            )
            if exact:
                return self._refined(exact, attribute, needle)
        surviving = tuple(
            rid for rid in self.row_ids if self._matches(values[rid], needle, dtype)
        )
        return self._refined(surviving, attribute, needle)

    def _index_refine(
        self, attribute: ColumnRef, needle: Any, dtype: DataType
    ) -> tuple[int, ...] | None:
        """Index-backed narrowing via the query engine, when applicable.

        Only exact (non-text) equality on a hash-indexed root-table
        column qualifies — text attributes need the fuzzy-match
        semantics and joined attributes the value maps.  The probe runs
        through a prepared statement pooled on the shared connection:
        every refine of the same attribute binds into one compiled
        template without re-fingerprinting — only the constant changes.
        Returns the surviving row ids (order preserved) or ``None`` to
        fall back to the value-map path.
        """
        if dtype is DataType.TEXT or needle is None:
            return None
        if attribute.table != self.table:
            return None
        table = self._database.table(self.table)
        if not table.has_index(attribute.column):
            return None
        root, column = self.table, attribute.column
        statement = self._database.default_connection.prepare_cached(
            ("candidates.refine", root, column),
            lambda: select(root).where(eq(column, Param("value"))),
        )
        try:
            matched = set(statement.execute(value=needle).row_ids())
        except TypeMismatchError:
            return None
        return tuple(rid for rid in self.row_ids if rid in matched)

    def _refined(
        self, surviving: tuple[int, ...], attribute: ColumnRef, needle: Any
    ) -> "CandidateSet":
        return CandidateSet(
            self._database,
            self._catalog,
            self.table,
            surviving,
            self.constraints + (Constraint(attribute, needle),),
            self.fuzzy_threshold,
            self._planner,
            self._shared_cache,
        )

    def _matches(self, candidate_values: frozenset, needle: Any, dtype: DataType) -> bool:
        if dtype is DataType.TEXT and isinstance(needle, str):
            return any(
                isinstance(v, str)
                and _text_matches(v, needle, self.fuzzy_threshold)
                for v in candidate_values
            )
        return needle in candidate_values

    def prune_missing(self) -> "CandidateSet":
        """Drop candidates whose rows no longer exist in the table.

        Snapshots of row ids can go stale between dialogue turns when a
        *different* session's committed transaction deletes rows (e.g.
        two users cancelling reservations of the same table).  Returns
        ``self`` unchanged when every candidate is still present.
        """
        table = self._database.table(self.table)
        surviving = tuple(
            rid for rid in self.row_ids if table.has_row(rid)
        )
        if len(surviving) == len(self.row_ids):
            return self
        return CandidateSet(
            self._database,
            self._catalog,
            self.table,
            surviving,
            self.constraints,
            self.fuzzy_threshold,
            self._planner,
            self._shared_cache,
        )

    def reset(self) -> "CandidateSet":
        """Back to all rows (e.g. after the user restarts the task)."""
        return CandidateSet.initial(
            self._database,
            self._catalog,
            self.table,
            self.fuzzy_threshold,
            self._shared_cache,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        applied = ", ".join(f"{c.attribute}={c.value!r}" for c in self.constraints)
        return f"CandidateSet({self.table!r}, n={len(self)}, [{applied}])"
