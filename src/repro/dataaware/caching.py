"""Attribute-value cache: the paper's "integrated caching strategy".

Computing the per-row value sets of a joined attribute (e.g. actor names
per screening) is the expensive part of a policy step.  The key
observation is that the *full-table* map only depends on the database
contents, not on the current candidate subset — so we compute it once per
data version and slice it per candidate set.  Combined with the
version-stamped :class:`~repro.db.statistics.StatisticsCatalog`, this is
what keeps the average response latency at "only a few milliseconds"
(Section 4) while still reflecting every committed update.
"""

from __future__ import annotations

from repro.dataaware.join_graph import JoinPlanner, map_values
from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database

__all__ = ["AttributeValueCache"]


class AttributeValueCache:
    """Version-stamped cache of full-table attribute value maps."""

    def __init__(self, database: Database, catalog: Catalog) -> None:
        self._database = database
        self._catalog = catalog
        self._planners: dict[str, JoinPlanner] = {}
        # (root_table, attribute) -> (data_version, rid -> value set)
        self._maps: dict[tuple[str, ColumnRef], tuple[int, dict[int, frozenset]]] = {}
        self.hits = 0
        self.misses = 0

    def planner(self, root_table: str) -> JoinPlanner:
        planner = self._planners.get(root_table)
        if planner is None:
            planner = JoinPlanner(self._catalog, root_table)
            self._planners[root_table] = planner
        return planner

    def full_map(
        self, root_table: str, attribute: ColumnRef
    ) -> dict[int, frozenset]:
        """``row_id -> value set`` of ``attribute`` for *all* rows of the root.

        Recomputed lazily whenever the database's data version moves.
        """
        version = self._database.data_version
        key = (root_table, attribute)
        cached = self._maps.get(key)
        if cached is not None and cached[0] == version:
            self.hits += 1
            return cached[1]
        self.misses += 1
        row_ids = self._database.table(root_table).row_ids()
        if attribute.table == root_table:
            table = self._database.table(root_table)
            value_map = {}
            for rid in row_ids:
                value = table.get(rid).get(attribute.column)
                value_map[rid] = (
                    frozenset((value,)) if value is not None else frozenset()
                )
        else:
            path = self.planner(root_table).path_to(attribute.table)
            if path is None:
                value_map = {rid: frozenset() for rid in row_ids}
            else:
                value_map = map_values(self._database, path, attribute, row_ids)
        self._maps[key] = (version, value_map)
        return value_map

    def invalidate(self) -> None:
        self._maps.clear()
