"""Attribute-value cache: the paper's "integrated caching strategy".

Computing the per-row value sets of a joined attribute (e.g. actor names
per screening) is the expensive part of a policy step.  The key
observation is that the *full-table* map only depends on the database
contents, not on the current candidate subset — so we compute it once per
data version and slice it per candidate set.  Combined with the
version-stamped :class:`~repro.db.statistics.StatisticsCatalog`, this is
what keeps the average response latency at "only a few milliseconds"
(Section 4) while still reflecting every committed update.

The cache is shared by every session of a serving runtime, so it is safe
for concurrent readers via the shared
:class:`~repro.db.versioncache.VersionStampedCache` protocol.
"""

from __future__ import annotations

import threading

from repro.dataaware.join_graph import JoinPlanner, map_values
from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.versioncache import VersionStampedCache

__all__ = ["AttributeValueCache"]


class AttributeValueCache:
    """Version-stamped, concurrency-safe cache of attribute value maps."""

    def __init__(self, database: Database, catalog: Catalog) -> None:
        self._database = database
        self._catalog = catalog
        self._planner_lock = threading.Lock()
        self._planners: dict[str, JoinPlanner] = {}
        # (root_table, attribute) -> rid -> value set
        self._maps = VersionStampedCache(database)

    @property
    def hits(self) -> int:
        return self._maps.hits

    @property
    def misses(self) -> int:
        return self._maps.misses

    def planner(self, root_table: str) -> JoinPlanner:
        with self._planner_lock:
            planner = self._planners.get(root_table)
            if planner is None:
                planner = JoinPlanner(self._catalog, root_table)
                self._planners[root_table] = planner
            return planner

    def full_map(
        self, root_table: str, attribute: ColumnRef
    ) -> dict[int, frozenset]:
        """``row_id -> value set`` of ``attribute`` for *all* rows of the root.

        Recomputed lazily whenever the database's data version moves.
        """
        return self._maps.lookup(
            (root_table, attribute),
            lambda: self._compute(root_table, attribute),
        )

    def _compute(
        self, root_table: str, attribute: ColumnRef
    ) -> dict[int, frozenset]:
        row_ids = self._database.table(root_table).row_ids()
        if attribute.table == root_table:
            table = self._database.table(root_table)
            value_map = {}
            for rid in row_ids:
                value = table.get(rid).get(attribute.column)
                value_map[rid] = (
                    frozenset((value,)) if value is not None else frozenset()
                )
            return value_map
        path = self.planner(root_table).path_to(attribute.table)
        if path is None:
            return {rid: frozenset() for rid in row_ids}
        return map_values(self._database, path, attribute, row_ids)

    def invalidate(self) -> None:
        self._maps.invalidate()
