"""Data-aware dialogue policy (Section 4 of the paper)."""

from repro.dataaware.awareness import AwarenessEstimate, UserAwarenessModel
from repro.dataaware.caching import AttributeValueCache
from repro.dataaware.candidates import CandidateSet, Constraint
from repro.dataaware.identification import (
    IdentificationOutcome,
    IdentificationSession,
    IdentificationStatus,
)
from repro.dataaware.join_graph import JoinPath, JoinPlanner, JoinStep, map_values
from repro.dataaware.policies import (
    DataAwarePolicy,
    RandomPolicy,
    SlotSelectionPolicy,
    StaticPolicy,
)
from repro.dataaware.scoring import (
    AttributeScore,
    AttributeScorer,
    InformativenessMeasure,
    weighted_entropy,
)

__all__ = [
    "AttributeScore",
    "AttributeScorer",
    "AttributeValueCache",
    "AwarenessEstimate",
    "CandidateSet",
    "Constraint",
    "DataAwarePolicy",
    "IdentificationOutcome",
    "IdentificationSession",
    "IdentificationStatus",
    "InformativenessMeasure",
    "JoinPath",
    "JoinPlanner",
    "JoinStep",
    "RandomPolicy",
    "SlotSelectionPolicy",
    "StaticPolicy",
    "UserAwarenessModel",
    "map_values",
    "weighted_entropy",
]
