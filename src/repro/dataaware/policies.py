"""Slot-selection policies: data-aware CAT plus the two baselines.

The evaluation of Section 4 compares three strategies for choosing the
next attribute to request when identifying an entity:

* :class:`DataAwarePolicy` — CAT's contribution: scores attributes over
  the *live* candidate set (entropy x awareness) and expands the search
  to FK-joined tables iteratively, gated by a-priori distinct-value
  statistics, so not every possible table is joined on every turn.
* :class:`StaticPolicy` — the attribute order is fixed once at "training
  time" from a database snapshot and replayed blindly at runtime.  It
  matches the data-aware policy when training data resembles production,
  but "will not adapt to data distribution changes at runtime".
* :class:`RandomPolicy` — asks for a uniformly random askable attribute;
  the weakest baseline ("speedup ... compared to a random strategy can be
  up to 80%").
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.annotation import EntityLookup, SchemaAnnotations
from repro.dataaware.awareness import UserAwarenessModel
from repro.dataaware.candidates import CandidateSet
from repro.dataaware.scoring import (
    AttributeScorer,
    InformativenessMeasure,
)
from repro.db.catalog import ColumnRef
from repro.db.database import Database
from repro.db.statistics import StatisticsCatalog
from repro.errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.catalog import Catalog

__all__ = [
    "SlotSelectionPolicy",
    "DataAwarePolicy",
    "StaticPolicy",
    "RandomPolicy",
]

_MIN_USEFUL_SCORE = 1e-9


class SlotSelectionPolicy:
    """Interface: choose the next attribute to request from the user."""

    name = "abstract"

    def next_attribute(
        self, candidates: CandidateSet, asked: set[ColumnRef]
    ) -> ColumnRef | None:
        """The attribute to ask for next, or ``None`` to give up/enumerate."""
        raise NotImplementedError

    def observe(self, attribute: ColumnRef, user_knew: bool) -> None:
        """Feedback hook after the user answered (or failed to)."""

    def reset(self) -> None:
        """Called at the start of a new identification episode."""


class DataAwarePolicy(SlotSelectionPolicy):
    """CAT's runtime policy: entropy x awareness over live candidates.

    Parameters
    ----------
    lookup:
        The entity lookup (identifying attributes grouped by hop
        distance) extracted from the transaction definition.
    awareness:
        Shared awareness model; updated online via :meth:`observe`.
    statistics:
        A-priori statistics used to gate join expansion: a joined table is
        only evaluated when one of its askable columns has more than one
        distinct value.
    expansion_threshold:
        If the best score found within the hops considered so far reaches
        this value, deeper tables are not joined this turn.
    """

    name = "data_aware"

    def __init__(
        self,
        lookup: EntityLookup,
        awareness: UserAwarenessModel,
        statistics: StatisticsCatalog,
        measure: InformativenessMeasure = InformativenessMeasure.ENTROPY,
        use_awareness: bool = True,
        expansion_threshold: float = 0.45,
        max_hops: int | None = None,
    ) -> None:
        self._lookup = lookup
        self._awareness = awareness
        self._statistics = statistics
        self._scorer = AttributeScorer(awareness, measure, use_awareness)
        self._expansion_threshold = expansion_threshold
        self._max_hops = max_hops

    # ------------------------------------------------------------------
    def next_attribute(
        self, candidates: CandidateSet, asked: set[ColumnRef]
    ) -> ColumnRef | None:
        if len(candidates) <= 1:
            return None
        best = None
        hops = sorted(self._lookup.identifying_attributes)
        if self._max_hops is not None:
            hops = [h for h in hops if h <= self._max_hops]
        for hop in hops:
            attributes = [
                attribute
                for attribute in self._lookup.identifying_attributes[hop]
                if attribute not in asked and self._worth_joining(attribute)
            ]
            if attributes:
                ranked = self._scorer.rank(candidates, attributes)
                if best is None or ranked[0].score > best.score:
                    best = ranked[0]
            # Iterative expansion: only join deeper tables when nothing
            # sufficiently informative was found closer to the entity.
            if best is not None and best.score >= self._expansion_threshold:
                break
        if best is None or best.score <= _MIN_USEFUL_SCORE:
            return None
        return best.attribute

    def observe(self, attribute: ColumnRef, user_knew: bool) -> None:
        self._awareness.observe(attribute, user_knew)

    # ------------------------------------------------------------------
    def _worth_joining(self, attribute: ColumnRef) -> bool:
        """A-priori gate: skip attributes that cannot split anything."""
        stats = self._statistics.column(attribute.table, attribute.column)
        return stats.distinct_count > 1


class StaticPolicy(SlotSelectionPolicy):
    """Fixed attribute order decided once from a training snapshot."""

    name = "static"

    def __init__(self, order: list[ColumnRef]) -> None:
        if not order:
            raise PolicyError("static policy needs a non-empty attribute order")
        self._order = list(order)

    @property
    def order(self) -> list[ColumnRef]:
        return list(self._order)

    @classmethod
    def train(
        cls,
        lookup: EntityLookup,
        database: Database,
        catalog: "Catalog",
        annotations: SchemaAnnotations,
        measure: InformativenessMeasure = InformativenessMeasure.ENTROPY,
        awareness: UserAwarenessModel | None = None,
    ) -> "StaticPolicy":
        """Fit the order by scoring attributes on the full training table.

        This mimics what a learned, non-data-aware system bakes into its
        policy: the attribute ranking implied by the *training* data.
        """
        awareness = awareness or UserAwarenessModel(annotations)
        scorer = AttributeScorer(awareness, measure)
        candidates = CandidateSet.initial(database, catalog, lookup.table)
        scores = scorer.rank(candidates, list(lookup.all_attributes()))
        order = [s.attribute for s in scores if s.score > _MIN_USEFUL_SCORE]
        if not order:
            order = [s.attribute for s in scores[:1]]
        return cls(order)

    def next_attribute(
        self, candidates: CandidateSet, asked: set[ColumnRef]
    ) -> ColumnRef | None:
        if len(candidates) <= 1:
            return None
        for attribute in self._order:
            if attribute not in asked:
                return attribute
        return None


class RandomPolicy(SlotSelectionPolicy):
    """Uniformly random choice among the askable attributes."""

    name = "random"

    def __init__(self, lookup: EntityLookup, seed: int = 0) -> None:
        self._attributes = list(lookup.all_attributes())
        if not self._attributes:
            raise PolicyError("random policy needs at least one attribute")
        self._seed = seed
        self._rng = random.Random(seed)

    def next_attribute(
        self, candidates: CandidateSet, asked: set[ColumnRef]
    ) -> ColumnRef | None:
        if len(candidates) <= 1:
            return None
        remaining = [a for a in self._attributes if a not in asked]
        if not remaining:
            return None
        return self._rng.choice(remaining)

    def reset(self) -> None:
        """Nothing to do; kept non-reseeding so episodes differ."""
