"""Rule-based paraphrasing to augment synthesized utterances.

The paper augments template utterances with "automated paraphrasing, as
done by Weir et al. [DBPal]".  DBPal's augmentation mixes lexical
paraphrasing with noise injection; we implement the same categories as
deterministic rules so the pipeline is reproducible offline:

* synonym substitution from a small lexicon ("want" -> "would like"),
* politeness / discourse wrappers ("could you ...", "... please"),
* contraction and expansion ("i do not" <-> "i don't"),
* filler-word dropping ("the", "a") and
* character-level typo noise (optional; never inside placeholders).

Paraphrasing operates on the *template string*, before slot values are
substituted, so annotation spans never break.
"""

from __future__ import annotations

import random
import re

from repro.errors import SynthesisError

__all__ = ["ParaphraseConfig", "Paraphraser"]

_PLACEHOLDER_RE = re.compile(r"\{[a-z_][a-z0-9_]*\}")

_SYNONYMS: dict[str, tuple[str, ...]] = {
    "want": ("would like", "need", "wish"),
    "want to": ("would like to", "need to", "plan to"),
    "buy": ("purchase", "get", "book"),
    "reserve": ("book", "get", "secure"),
    "watch": ("see", "catch"),
    "movie": ("film", "picture"),
    "tickets": ("seats", "places"),
    "ticket": ("seat", "place"),
    "cancel": ("call off", "drop", "revoke"),
    "show": ("tell", "give"),
    "list": ("show", "display"),
    "tonight": ("this evening", "later today"),
    "today": ("this day",),
    "screening": ("show", "showing"),
    "please": ("kindly",),
    "hello": ("hi", "hey"),
    "is": ("would be",),
    "my": ("the",),
}

_PREFIXES = (
    "please ",
    "could you ",
    "can you ",
    "i would like to say that ",
    "well ",
    "hi there ",
    "hey ",
    "so ",
)

_SUFFIXES = (
    " please",
    " thanks",
    " thank you",
    " if possible",
    " right away",
)

_CONTRACTIONS = {
    "i do not": "i don't",
    "do not": "don't",
    "cannot": "can't",
    "i am": "i'm",
    "it is": "it's",
    "that is": "that's",
    "i would": "i'd",
    "i will": "i'll",
}

_DROPPABLE = ("the", "a", "an")


class ParaphraseConfig:
    """Knobs for the paraphraser."""

    def __init__(
        self,
        variants_per_template: int = 4,
        synonym_probability: float = 0.6,
        wrapper_probability: float = 0.4,
        contraction_probability: float = 0.3,
        drop_probability: float = 0.15,
        typo_probability: float = 0.0,
        seed: int = 97,
    ) -> None:
        if variants_per_template < 0:
            raise SynthesisError("variants_per_template must be >= 0")
        for name, p in (
            ("synonym_probability", synonym_probability),
            ("wrapper_probability", wrapper_probability),
            ("contraction_probability", contraction_probability),
            ("drop_probability", drop_probability),
            ("typo_probability", typo_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise SynthesisError(f"{name} must be in [0, 1]")
        self.variants_per_template = variants_per_template
        self.synonym_probability = synonym_probability
        self.wrapper_probability = wrapper_probability
        self.contraction_probability = contraction_probability
        self.drop_probability = drop_probability
        self.typo_probability = typo_probability
        self.seed = seed


class Paraphraser:
    """Produces paraphrase variants of template strings."""

    def __init__(self, config: ParaphraseConfig | None = None) -> None:
        self.config = config or ParaphraseConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    def variants(self, template_text: str) -> list[str]:
        """Distinct paraphrases of ``template_text`` (placeholders intact).

        The original string is *not* included.  The number of results is
        at most ``variants_per_template`` (duplicates are dropped).
        """
        results: list[str] = []
        seen = {template_text}
        attempts = self.config.variants_per_template * 4
        for __ in range(attempts):
            if len(results) >= self.config.variants_per_template:
                break
            variant = self._paraphrase_once(template_text)
            if variant not in seen and _same_placeholders(template_text, variant):
                seen.add(variant)
                results.append(variant)
        return results

    # ------------------------------------------------------------------
    def _paraphrase_once(self, text: str) -> str:
        rng = self._rng
        out = text
        if rng.random() < self.config.synonym_probability:
            out = self._substitute_synonym(out)
        if rng.random() < self.config.contraction_probability:
            out = self._apply_contraction(out)
        if rng.random() < self.config.drop_probability:
            out = self._drop_filler(out)
        if rng.random() < self.config.wrapper_probability:
            out = self._wrap(out)
        if rng.random() < self.config.typo_probability:
            out = self._inject_typo(out)
        return _normalise_spaces(out)

    def _substitute_synonym(self, text: str) -> str:
        rng = self._rng
        lowered = text.lower()
        candidates = [
            phrase
            for phrase in sorted(_SYNONYMS, key=len, reverse=True)
            if _phrase_in(phrase, lowered)
        ]
        if not candidates:
            return text
        phrase = rng.choice(candidates)
        replacement = rng.choice(_SYNONYMS[phrase])
        return _replace_phrase(text, phrase, replacement)

    def _apply_contraction(self, text: str) -> str:
        lowered = text.lower()
        for long_form, short_form in _CONTRACTIONS.items():
            if _phrase_in(long_form, lowered):
                return _replace_phrase(text, long_form, short_form)
        # Try the reverse direction (expansion) as well.
        for long_form, short_form in _CONTRACTIONS.items():
            if _phrase_in(short_form, lowered):
                return _replace_phrase(text, short_form, long_form)
        return text

    def _drop_filler(self, text: str) -> str:
        words = text.split(" ")
        indexes = [
            i
            for i, word in enumerate(words)
            if word.lower() in _DROPPABLE
        ]
        if not indexes:
            return text
        drop = self._rng.choice(indexes)
        return " ".join(w for i, w in enumerate(words) if i != drop)

    def _wrap(self, text: str) -> str:
        rng = self._rng
        if rng.random() < 0.5:
            prefix = rng.choice(_PREFIXES)
            return prefix + text
        return text + rng.choice(_SUFFIXES)

    def _inject_typo(self, text: str) -> str:
        """Swap two adjacent characters of one word (never a placeholder)."""
        rng = self._rng
        protected = [(m.start(), m.end()) for m in _PLACEHOLDER_RE.finditer(text)]

        def inside_placeholder(index: int) -> bool:
            return any(start <= index < end for start, end in protected)

        positions = [
            i
            for i in range(len(text) - 1)
            if text[i].isalpha()
            and text[i + 1].isalpha()
            and not inside_placeholder(i)
            and not inside_placeholder(i + 1)
        ]
        if not positions:
            return text
        i = rng.choice(positions)
        return text[:i] + text[i + 1] + text[i] + text[i + 2 :]


def _phrase_in(phrase: str, lowered_text: str) -> bool:
    return re.search(rf"\b{re.escape(phrase)}\b", lowered_text) is not None


def _replace_phrase(text: str, phrase: str, replacement: str) -> str:
    return re.sub(
        rf"\b{re.escape(phrase)}\b", replacement, text, count=1, flags=re.IGNORECASE
    )


def _normalise_spaces(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


def _same_placeholders(original: str, variant: str) -> bool:
    return sorted(_PLACEHOLDER_RE.findall(original)) == sorted(
        _PLACEHOLDER_RE.findall(variant)
    )
