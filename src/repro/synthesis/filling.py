"""Template filling: instantiate placeholders with live database values.

"By filling the placeholders with actual data stored in the database, we
synthesize annotated natural language statements" (Section 3).  The
filler samples distinct values from the referenced columns (or plausible
values for plain typed parameters), substitutes them into the template
and records exact character spans — producing ready-to-train
:class:`~repro.synthesis.corpus.NLUExample` objects.
"""

from __future__ import annotations

import datetime as _dt
import random
import re

from repro.db.database import Database
from repro.db.types import DataType, render
from repro.errors import SynthesisError
from repro.synthesis.corpus import NLUExample, SlotSpan
from repro.synthesis.templates import SlotVocabulary, Template

__all__ = ["TemplateFiller"]

_PLACEHOLDER_RE = re.compile(r"\{([a-z_][a-z0-9_]*)\}")


def _lowercased(example: NLUExample) -> NLUExample:
    """Lower-case an example, keeping slot spans consistent."""
    return NLUExample(
        text=example.text.lower(),
        intent=example.intent,
        slots=tuple(
            SlotSpan(s.name, s.value.lower(), s.start, s.end)
            for s in example.slots
        ),
    )


class TemplateFiller:
    """Fills templates with sampled database values."""

    def __init__(
        self,
        database: Database,
        vocabulary: SlotVocabulary,
        seed: int = 23,
        max_values_per_slot: int = 200,
    ) -> None:
        self._database = database
        self._vocabulary = vocabulary
        self._rng = random.Random(seed)
        self._max_values = max_values_per_slot
        self._value_pool: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def fill(
        self,
        template: Template,
        n_samples: int = 5,
        lowercase_fraction: float = 0.3,
    ) -> list[NLUExample]:
        """Instantiate ``template`` ``n_samples`` times with random values.

        A fraction of the produced utterances is lower-cased wholesale —
        real users rarely bother with capitalisation, so the slot tagger
        must not rely on casing.
        """
        examples: list[NLUExample] = []
        seen_texts: set[str] = set()
        attempts = max(n_samples * 3, n_samples + 3)
        for __ in range(attempts):
            if len(examples) >= n_samples:
                break
            example = self._fill_once(template)
            if self._rng.random() < lowercase_fraction:
                example = _lowercased(example)
            if example.text not in seen_texts:
                seen_texts.add(example.text)
                examples.append(example)
        return examples

    def _fill_once(self, template: Template) -> NLUExample:
        text = template.text
        pieces: list[str] = []
        spans: list[SlotSpan] = []
        cursor = 0
        offset = 0
        for match in _PLACEHOLDER_RE.finditer(text):
            slot_name = match.group(1)
            value = self._sample_value(slot_name)
            pieces.append(text[cursor : match.start()])
            start = match.start() + offset
            pieces.append(value)
            spans.append(SlotSpan(slot_name, value, start, start + len(value)))
            offset += len(value) - (match.end() - match.start())
            cursor = match.end()
        pieces.append(text[cursor:])
        return NLUExample(
            text="".join(pieces), intent=template.intent, slots=tuple(spans)
        )

    # ------------------------------------------------------------------
    def _sample_value(self, slot_name: str) -> str:
        pool = self._value_pool.get(slot_name)
        if pool is None:
            pool = self._build_pool(slot_name)
            if not pool:
                raise SynthesisError(
                    f"no values available to fill slot {slot_name!r}"
                )
            self._value_pool[slot_name] = pool
        return self._rng.choice(pool)

    def _build_pool(self, slot_name: str) -> list[str]:
        source = self._vocabulary.source(slot_name)
        if source.attribute is not None:
            table = self._database.table(source.attribute.table)
            values = {
                render(v, source.dtype)
                for v in table.column_values(source.attribute.column)
                if v is not None
            }
            pool = sorted(values)
            if len(pool) > self._max_values:
                pool = self._rng.sample(pool, self._max_values)
            if source.dtype is DataType.DATE:
                # Users say "today"/"tomorrow" far more often than ISO
                # dates; teach the tagger these are date values (the
                # entity linker resolves them against a reference date).
                pool = pool + ["today", "tomorrow", "tonight"] * 3
            return pool
        return self._synthetic_pool(source.dtype)

    def _synthetic_pool(self, dtype: DataType) -> list[str]:
        """Plausible values for parameters without a backing column."""
        if dtype is DataType.INTEGER:
            return [str(n) for n in range(1, 11)]
        if dtype is DataType.FLOAT:
            return [f"{n / 2:.1f}" for n in range(2, 41)]
        if dtype is DataType.BOOLEAN:
            return ["yes", "no"]
        if dtype is DataType.DATE:
            base = _dt.date(2022, 3, 20)
            return [
                (base + _dt.timedelta(days=d)).isoformat() for d in range(30)
            ]
        if dtype is DataType.TIME:
            return [f"{hour:02d}:{minute:02d}" for hour in range(10, 23)
                    for minute in (0, 30)]
        return ["something", "anything", "that thing"]
