"""Dialogue self-play: synthesize high-level DM training flows.

Following Shah et al.'s dialogue self-play (as adapted in Section 3), a
simulated user and a simulated agent exchange *actions* (not text).  The
action set is derived from the transaction definitions; entity
identification is deliberately kept as a single high-level action
(``identify_screening``) because slot-level identification is decided by
the data-aware policy at runtime, not learned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.annotation import Task
from repro.dialogue import acts
from repro.errors import SynthesisError
from repro.synthesis.corpus import DialogueFlow, FlowDataset, FlowTurn
from repro.synthesis.user_model import DEFAULT_PROFILES, UserProfile

__all__ = ["SelfPlayConfig", "SelfPlaySimulator"]


@dataclass(frozen=True)
class SelfPlayConfig:
    """Controls the amount and variety of synthesized flows."""

    n_flows: int = 300
    seed: int = 41
    profiles: tuple[tuple[UserProfile, float], ...] = DEFAULT_PROFILES

    def __post_init__(self) -> None:
        if self.n_flows <= 0:
            raise SynthesisError("n_flows must be positive")
        if not self.profiles:
            raise SynthesisError("at least one user profile is required")


class SelfPlaySimulator:
    """Simulates user/agent action exchanges to produce dialogue flows."""

    def __init__(self, tasks: list[Task], config: SelfPlayConfig | None = None) -> None:
        if not tasks:
            raise SynthesisError("self-play needs at least one task")
        self._tasks = list(tasks)
        self.config = config or SelfPlayConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    def run(self) -> FlowDataset:
        """Generate the configured number of dialogue flows."""
        dataset = FlowDataset()
        for __ in range(self.config.n_flows):
            profile = self._sample_profile()
            task = self._rng.choice(self._tasks)
            dataset.add(self._simulate_dialogue(task, profile))
        return dataset

    # ------------------------------------------------------------------
    def _sample_profile(self) -> UserProfile:
        profiles = [p for p, __ in self.config.profiles]
        weights = [w for __, w in self.config.profiles]
        return self._rng.choices(profiles, weights=weights, k=1)[0]

    def _simulate_dialogue(self, task: Task, profile: UserProfile) -> DialogueFlow:
        rng = self._rng
        turns: list[FlowTurn] = []
        if rng.random() < profile.greet_probability:
            turns.append(FlowTurn("user", acts.USER_GREET))
            turns.append(FlowTurn("agent", acts.AGENT_GREET))

        completed = self._play_task(task, profile, turns)
        if completed and rng.random() < profile.second_task_probability:
            next_task = rng.choice(self._tasks)
            self._play_task(next_task, profile, turns)

        if rng.random() < profile.thank_probability:
            turns.append(FlowTurn("user", acts.USER_THANK))
        turns.append(FlowTurn("user", acts.USER_GOODBYE))
        turns.append(FlowTurn("agent", acts.AGENT_GOODBYE))
        return DialogueFlow(task=task.name, turns=tuple(turns))

    def _play_task(
        self, task: Task, profile: UserProfile, turns: list[FlowTurn]
    ) -> bool:
        """Append one task episode; returns True when executed successfully."""
        rng = self._rng
        turns.append(FlowTurn("user", acts.request_action(task.name)))

        # Information gathering: one high-level action per entity slot,
        # one ask/inform exchange per plain value slot.
        steps: list[FlowTurn] = []
        for lookup in task.lookups:
            steps.append(FlowTurn("agent", acts.identify_action(lookup.table)))
        for slot in task.value_slots:
            steps.append(FlowTurn("agent", acts.ask_slot_action(slot.name)))
            steps.append(FlowTurn("user", acts.USER_INFORM))

        for step in steps:
            if step.speaker == "agent" and rng.random() < profile.abort_probability:
                turns.append(step)
                turns.append(FlowTurn("user", acts.USER_ABORT))
                turns.append(FlowTurn("agent", acts.AGENT_ACK_ABORT))
                if rng.random() < profile.retry_after_abort_probability:
                    return self._play_task(task, profile, turns)
                return False
            turns.append(step)

        turns.append(FlowTurn("agent", acts.AGENT_CONFIRM))
        if rng.random() < profile.deny_at_confirm_probability:
            turns.append(FlowTurn("user", acts.USER_DENY))
            turns.append(FlowTurn("agent", acts.AGENT_RESTART))
            # After a restart the corrected values are re-collected and
            # confirmed again; the user accepts the second confirmation.
            for lookup in task.lookups:
                turns.append(FlowTurn("agent", acts.identify_action(lookup.table)))
            for slot in task.value_slots:
                turns.append(FlowTurn("agent", acts.ask_slot_action(slot.name)))
                turns.append(FlowTurn("user", acts.USER_INFORM))
            turns.append(FlowTurn("agent", acts.AGENT_CONFIRM))
        turns.append(FlowTurn("user", acts.USER_AFFIRM))
        turns.append(FlowTurn("agent", acts.AGENT_EXECUTE))
        turns.append(FlowTurn("agent", acts.AGENT_SUCCESS))
        return True
