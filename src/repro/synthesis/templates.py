"""Natural-language templates: the developer's only manual input.

"We let the developer specify a few natural language templates (e.g.,
'I want to watch {movie_title}')" (Section 3).  A template is a string
with ``{slot}`` placeholders plus the intent it expresses.  The
:class:`SlotVocabulary` maps slot names to their source — either a task
parameter (plain value slot) or a database attribute — so templates can
be validated at registration time and filled with live values later.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.annotation import Task
from repro.db.catalog import ColumnRef
from repro.db.types import DataType
from repro.errors import TemplateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.annotation import SchemaAnnotations

__all__ = ["SlotVocabulary", "Template", "TemplateLibrary", "slot_name_for"]

_PLACEHOLDER_RE = re.compile(r"\{([a-z_][a-z0-9_]*)\}")


def slot_name_for(attribute: ColumnRef) -> str:
    """Canonical slot name of a database attribute, e.g. ``movie_title``.

    The column name alone is used when it is already descriptive enough
    (contains the table name or an underscore); otherwise the table name
    is prefixed to disambiguate (``actor.name`` -> ``actor_name``).
    """
    if attribute.table in attribute.column:
        return attribute.column
    return f"{attribute.table}_{attribute.column}"


@dataclass(frozen=True)
class SlotSource:
    """Where a slot's values come from."""

    name: str
    dtype: DataType
    attribute: ColumnRef | None = None  # None for plain task parameters

    @property
    def is_attribute(self) -> bool:
        return self.attribute is not None


class SlotVocabulary:
    """All slot names known for one agent, with their sources."""

    def __init__(self) -> None:
        self._sources: dict[str, SlotSource] = {}

    @classmethod
    def from_tasks(cls, tasks: list[Task], catalog) -> "SlotVocabulary":
        """Derive the vocabulary from extracted tasks.

        Value slots keep their parameter name; entity slots contribute one
        slot per identifying attribute.
        """
        vocabulary = cls()
        for task in tasks:
            for slot in task.value_slots:
                vocabulary.add(SlotSource(slot.name, slot.dtype))
            for lookup in task.lookups:
                for attribute in lookup.all_attributes():
                    dtype = catalog.column_type(attribute)
                    vocabulary.add(
                        SlotSource(slot_name_for(attribute), dtype, attribute)
                    )
        return vocabulary

    def add(self, source: SlotSource) -> None:
        existing = self._sources.get(source.name)
        if existing is not None and existing != source:
            raise TemplateError(
                f"conflicting definitions for slot {source.name!r}: "
                f"{existing} vs {source}"
            )
        self._sources[source.name] = source

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def names(self) -> list[str]:
        return sorted(self._sources)

    def source(self, name: str) -> SlotSource:
        try:
            return self._sources[name]
        except KeyError:
            raise TemplateError(f"unknown slot {name!r}") from None

    def attribute_for(self, name: str) -> ColumnRef | None:
        return self.source(name).attribute

    def slot_for_attribute(self, attribute: ColumnRef) -> str | None:
        for name, source in self._sources.items():
            if source.attribute == attribute:
                return name
        return None


@dataclass(frozen=True)
class Template:
    """One NL template: text with placeholders plus its intent."""

    text: str
    intent: str

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise TemplateError("template text must not be empty")
        stripped = _PLACEHOLDER_RE.sub("", self.text)
        if "{" in stripped or "}" in stripped:
            raise TemplateError(f"malformed placeholder braces in {self.text!r}")

    @property
    def placeholders(self) -> tuple[str, ...]:
        return tuple(_PLACEHOLDER_RE.findall(self.text))

    def validate(self, vocabulary: SlotVocabulary) -> None:
        for placeholder in self.placeholders:
            if placeholder not in vocabulary:
                raise TemplateError(
                    f"template {self.text!r} references unknown slot "
                    f"{placeholder!r}"
                )


#: Generic intents every agent supports, with ready-made templates.
GENERIC_TEMPLATES: dict[str, tuple[str, ...]] = {
    "greet": (
        "hello", "hi", "hi there", "good evening", "hey", "good morning",
    ),
    "goodbye": (
        "goodbye", "bye", "see you", "that is all", "bye bye", "quit",
    ),
    "affirm": (
        "yes", "yes please", "correct", "exactly", "that is right", "sure",
        "yes that is correct", "sounds good", "go ahead",
    ),
    "deny": (
        "no", "no thanks", "that is wrong", "not quite", "nope",
        "no that is not right",
    ),
    "abort": (
        "cancel that", "stop", "never mind", "forget it", "abort",
        "i changed my mind", "please cancel the whole thing",
    ),
    "dont_know": (
        "i do not know", "no idea", "i cannot remember", "not sure",
        "i do not have that at hand", "i do not recall",
    ),
    "thank": (
        "thanks", "thank you", "thanks a lot", "great thank you",
    ),
}


class TemplateLibrary:
    """All templates of one agent, validated and grouped by intent."""

    def __init__(self, vocabulary: SlotVocabulary) -> None:
        self._vocabulary = vocabulary
        self._templates: list[Template] = []
        for intent, texts in GENERIC_TEMPLATES.items():
            for text in texts:
                self._templates.append(Template(text, intent))

    @property
    def vocabulary(self) -> SlotVocabulary:
        return self._vocabulary

    def add(self, text: str, intent: str) -> Template:
        template = Template(text, intent)
        template.validate(self._vocabulary)
        self._templates.append(template)
        return template

    def add_many(self, texts: list[str], intent: str) -> None:
        for text in texts:
            self.add(text, intent)

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self):
        return iter(self._templates)

    def intents(self) -> list[str]:
        return sorted({t.intent for t in self._templates})

    def by_intent(self, intent: str) -> list[Template]:
        return [t for t in self._templates if t.intent == intent]
