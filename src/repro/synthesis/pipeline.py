"""End-to-end training-data generation (the offline half of Figure 2).

Ties the pieces together: extracted tasks + developer templates
-> paraphrase augmentation -> database filling -> NLU dataset, and
self-play -> DM flow dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation import Task
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.errors import SynthesisError
from repro.synthesis.corpus import FlowDataset, NLUDataset
from repro.synthesis.filling import TemplateFiller
from repro.synthesis.paraphrase import ParaphraseConfig, Paraphraser
from repro.synthesis.selfplay import SelfPlayConfig, SelfPlaySimulator
from repro.synthesis.templates import SlotVocabulary, Template, TemplateLibrary

__all__ = ["GenerationConfig", "TrainingDataGenerator"]


@dataclass(frozen=True)
class GenerationConfig:
    """Knobs for the full generation pipeline."""

    samples_per_template: int = 6
    paraphrase: ParaphraseConfig | None = None
    use_paraphrasing: bool = True
    selfplay: SelfPlayConfig | None = None
    seed: int = 23


class TrainingDataGenerator:
    """Generates NLU and DM training data for one database + task set."""

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        tasks: list[Task],
        config: GenerationConfig | None = None,
    ) -> None:
        if not tasks:
            raise SynthesisError("training data generation needs tasks")
        self._database = database
        self._catalog = catalog
        self._tasks = list(tasks)
        self.config = config or GenerationConfig()
        self.vocabulary = SlotVocabulary.from_tasks(self._tasks, catalog)
        self.library = TemplateLibrary(self.vocabulary)

    # ------------------------------------------------------------------
    # Developer input
    # ------------------------------------------------------------------
    def add_templates(self, intent: str, texts: list[str]) -> None:
        """Register developer-provided templates for one intent."""
        self.library.add_many(texts, intent)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_nlu(self) -> NLUDataset:
        """Fill (and optionally paraphrase) every template in the library."""
        filler = TemplateFiller(self._database, self.vocabulary,
                                seed=self.config.seed)
        paraphraser = (
            Paraphraser(self.config.paraphrase)
            if self.config.use_paraphrasing
            else None
        )
        dataset = NLUDataset()
        for template in self.library:
            variants = [template]
            if paraphraser is not None:
                for text in paraphraser.variants(template.text):
                    variants.append(Template(text, template.intent))
            for variant in variants:
                dataset.extend(
                    filler.fill(variant, self.config.samples_per_template)
                )
        return dataset

    def generate_flows(self) -> FlowDataset:
        """Run dialogue self-play over the extracted tasks."""
        simulator = SelfPlaySimulator(self._tasks, self.config.selfplay)
        return simulator.run()
