"""Training-data synthesis (Section 3 of the paper)."""

from repro.synthesis.corpus import (
    DialogueFlow,
    FlowDataset,
    FlowTurn,
    NLUDataset,
    NLUExample,
    SlotSpan,
)
from repro.synthesis.filling import TemplateFiller
from repro.synthesis.paraphrase import ParaphraseConfig, Paraphraser
from repro.synthesis.pipeline import GenerationConfig, TrainingDataGenerator
from repro.synthesis.selfplay import SelfPlayConfig, SelfPlaySimulator
from repro.synthesis.templates import (
    SlotVocabulary,
    Template,
    TemplateLibrary,
    slot_name_for,
)
from repro.synthesis.user_model import DEFAULT_PROFILES, UserProfile

__all__ = [
    "DEFAULT_PROFILES",
    "DialogueFlow",
    "FlowDataset",
    "FlowTurn",
    "GenerationConfig",
    "NLUDataset",
    "NLUExample",
    "ParaphraseConfig",
    "Paraphraser",
    "SelfPlayConfig",
    "SelfPlaySimulator",
    "SlotSpan",
    "SlotVocabulary",
    "Template",
    "TemplateFiller",
    "TemplateLibrary",
    "TrainingDataGenerator",
    "UserProfile",
    "slot_name_for",
]
