"""Simulated user behaviour profiles for dialogue self-play.

"By sampling different user behavior during the simulation (e.g.,
sometimes performing the whole action and sometimes aborting it) the
synthesized dialogue flows consist of different outlines" (Section 3).
A :class:`UserProfile` is a small bundle of behaviour probabilities; the
module ships the mix of profiles used to synthesize training flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError

__all__ = ["UserProfile", "DEFAULT_PROFILES"]


@dataclass(frozen=True)
class UserProfile:
    """Behaviour probabilities of one simulated user type."""

    name: str
    greet_probability: float = 0.5
    thank_probability: float = 0.4
    abort_probability: float = 0.0       # chance to abort at each step
    deny_at_confirm_probability: float = 0.1
    retry_after_abort_probability: float = 0.3
    second_task_probability: float = 0.15

    def __post_init__(self) -> None:
        for field_name in (
            "greet_probability",
            "thank_probability",
            "abort_probability",
            "deny_at_confirm_probability",
            "retry_after_abort_probability",
            "second_task_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise SynthesisError(
                    f"profile {self.name!r}: {field_name} must be in [0, 1]"
                )


#: The default population of simulated users, weighted by frequency.
DEFAULT_PROFILES: tuple[tuple[UserProfile, float], ...] = (
    (UserProfile("cooperative", abort_probability=0.0,
                 deny_at_confirm_probability=0.05), 0.55),
    (UserProfile("hesitant", abort_probability=0.05,
                 deny_at_confirm_probability=0.3,
                 greet_probability=0.7), 0.2),
    (UserProfile("impatient", abort_probability=0.25,
                 greet_probability=0.2, thank_probability=0.1,
                 retry_after_abort_probability=0.5), 0.15),
    (UserProfile("chatty", greet_probability=0.95, thank_probability=0.9,
                 second_task_probability=0.4), 0.1),
)
