"""Corpus data structures for synthesized training data.

Two kinds of training data come out of CAT's offline pipeline (Figure 3):

* *NLU training data* — annotated utterances: raw text, the user intent,
  and character-span slot annotations
  (``"The movie title is Forrest Gump." -> intent inform;
  slots movie_title='Forrest Gump'``).
* *DM training data* — high-level dialogue flows: alternating
  user/agent action sequences from dialogue self-play.

Both are plain, JSON-serialisable dataclasses with deterministic
train/test splitting helpers.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import SynthesisError

__all__ = [
    "SlotSpan",
    "NLUExample",
    "NLUDataset",
    "FlowTurn",
    "DialogueFlow",
    "FlowDataset",
]


@dataclass(frozen=True)
class SlotSpan:
    """One annotated slot value inside an utterance (char offsets)."""

    name: str
    value: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise SynthesisError(
                f"bad slot span [{self.start}, {self.end}) for {self.name!r}"
            )


@dataclass(frozen=True)
class NLUExample:
    """One annotated training utterance."""

    text: str
    intent: str
    slots: tuple[SlotSpan, ...] = ()

    def __post_init__(self) -> None:
        for span in self.slots:
            if span.end > len(self.text):
                raise SynthesisError(
                    f"slot span {span} exceeds text length {len(self.text)}"
                )
            actual = self.text[span.start : span.end]
            if actual != span.value:
                raise SynthesisError(
                    f"slot span mismatch: text has {actual!r}, "
                    f"annotation says {span.value!r}"
                )

    def slot_values(self) -> dict[str, str]:
        return {span.name: span.value for span in self.slots}

    def to_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "intent": self.intent,
            "slots": [
                {"name": s.name, "value": s.value, "start": s.start, "end": s.end}
                for s in self.slots
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "NLUExample":
        return cls(
            text=payload["text"],
            intent=payload["intent"],
            slots=tuple(
                SlotSpan(s["name"], s["value"], s["start"], s["end"])
                for s in payload.get("slots", ())
            ),
        )


class NLUDataset:
    """An ordered collection of :class:`NLUExample` with split helpers."""

    def __init__(self, examples: list[NLUExample] | None = None) -> None:
        self.examples: list[NLUExample] = list(examples or ())

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[NLUExample]:
        return iter(self.examples)

    def __getitem__(self, index: int) -> NLUExample:
        return self.examples[index]

    def add(self, example: NLUExample) -> None:
        self.examples.append(example)

    def extend(self, examples: list[NLUExample]) -> None:
        self.examples.extend(examples)

    def intents(self) -> list[str]:
        return sorted({e.intent for e in self.examples})

    def slot_names(self) -> list[str]:
        names = {span.name for e in self.examples for span in e.slots}
        return sorted(names)

    def split(
        self, test_fraction: float = 0.2, seed: int = 13
    ) -> tuple["NLUDataset", "NLUDataset"]:
        """Deterministic shuffled train/test split, stratified by intent."""
        if not 0.0 < test_fraction < 1.0:
            raise SynthesisError("test_fraction must be in (0, 1)")
        rng = random.Random(seed)
        by_intent: dict[str, list[NLUExample]] = {}
        for example in self.examples:
            by_intent.setdefault(example.intent, []).append(example)
        train: list[NLUExample] = []
        test: list[NLUExample] = []
        for intent in sorted(by_intent):
            bucket = list(by_intent[intent])
            rng.shuffle(bucket)
            cut = max(1, int(len(bucket) * test_fraction)) if len(bucket) > 1 else 0
            test.extend(bucket[:cut])
            train.extend(bucket[cut:])
        rng.shuffle(train)
        rng.shuffle(test)
        return NLUDataset(train), NLUDataset(test)

    # Serialization ---------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([e.to_dict() for e in self.examples], indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "NLUDataset":
        return cls([NLUExample.from_dict(d) for d in json.loads(payload)])


# ---------------------------------------------------------------------------
# Dialogue flows (DM training data)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FlowTurn:
    """One turn of a high-level dialogue flow."""

    speaker: str  # "user" | "agent"
    action: str

    def __post_init__(self) -> None:
        if self.speaker not in ("user", "agent"):
            raise SynthesisError(f"unknown speaker {self.speaker!r}")


@dataclass(frozen=True)
class DialogueFlow:
    """A full self-played dialogue outline."""

    task: str
    turns: tuple[FlowTurn, ...]

    def agent_decision_points(self) -> list[tuple[tuple[str, ...], str]]:
        """(history-of-actions, next-agent-action) pairs for DM training."""
        pairs: list[tuple[tuple[str, ...], str]] = []
        history: list[str] = []
        for turn in self.turns:
            if turn.speaker == "agent":
                pairs.append((tuple(history), turn.action))
            history.append(f"{turn.speaker}:{turn.action}")
        return pairs

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "turns": [{"speaker": t.speaker, "action": t.action} for t in self.turns],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DialogueFlow":
        return cls(
            task=payload["task"],
            turns=tuple(
                FlowTurn(t["speaker"], t["action"]) for t in payload["turns"]
            ),
        )


class FlowDataset:
    """A collection of dialogue flows."""

    def __init__(self, flows: list[DialogueFlow] | None = None) -> None:
        self.flows: list[DialogueFlow] = list(flows or ())

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[DialogueFlow]:
        return iter(self.flows)

    def add(self, flow: DialogueFlow) -> None:
        self.flows.append(flow)

    def agent_actions(self) -> list[str]:
        actions = {
            turn.action
            for flow in self.flows
            for turn in flow.turns
            if turn.speaker == "agent"
        }
        return sorted(actions)

    def decision_points(self) -> list[tuple[tuple[str, ...], str]]:
        pairs: list[tuple[tuple[str, ...], str]] = []
        for flow in self.flows:
            pairs.extend(flow.agent_decision_points())
        return pairs

    def to_json(self) -> str:
        return json.dumps([f.to_dict() for f in self.flows], indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "FlowDataset":
        return cls([DialogueFlow.from_dict(d) for d in json.loads(payload)])
