"""Dialogue state: what the agent knows at each point of a conversation.

Tracks the active task, collected slot values, the per-entity
identification sessions, the action history (used by the learned DM
policy) and the current phase of the task state machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.annotation import Task
from repro.dataaware.identification import IdentificationSession
from repro.errors import DialogueError

__all__ = ["Phase", "DialogueState"]


class Phase(enum.Enum):
    """Coarse phase of the conversation."""

    IDLE = "idle"                    # no active task
    GATHERING = "gathering"          # filling slots / identifying entities
    CHOOSING = "choosing"            # a choice list is presented
    CONFIRMING = "confirming"        # waiting for yes/no on the summary
    DONE = "done"                    # conversation closed


@dataclass
class DialogueState:
    """Mutable state of one conversation."""

    phase: Phase = Phase.IDLE
    task: Task | None = None
    collected: dict[str, Any] = field(default_factory=dict)
    identification: IdentificationSession | None = None
    current_slot: str | None = None
    history: list[str] = field(default_factory=list)
    greeted: bool = False
    turn_count: int = 0

    # ------------------------------------------------------------------
    def record(self, speaker: str, action: str) -> None:
        self.history.append(f"{speaker}:{action}")

    def recent_history(self, window: int = 6) -> tuple[str, ...]:
        return tuple(self.history[-window:])

    # ------------------------------------------------------------------
    def start_task(self, task: Task) -> None:
        self.task = task
        self.collected = {}
        self.identification = None
        self.current_slot = None
        self.phase = Phase.GATHERING

    def clear_task(self) -> None:
        self.task = None
        self.collected = {}
        self.identification = None
        self.current_slot = None
        self.phase = Phase.IDLE

    def restart_task(self) -> None:
        """Drop collected values but stay on the same task."""
        if self.task is None:
            raise DialogueError("no task to restart")
        task = self.task
        self.start_task(task)

    # ------------------------------------------------------------------
    def missing_slots(self) -> list[str]:
        """Names of required task slots not collected yet, in order."""
        if self.task is None:
            return []
        return [
            slot.name
            for slot in self.task.slots
            if not slot.optional and slot.name not in self.collected
        ]

    @property
    def all_slots_collected(self) -> bool:
        return self.task is not None and not self.missing_slots()
