"""Per-conversation context: everything one dialogue mutates.

The synthesized artifacts (models, vocabulary, statistics, caches) are
shared and read-only; *this* object is the complete mutable footprint of
a single conversation, threaded explicitly through
:meth:`~repro.agent.agent.ConversationalAgent.respond`:

* the :class:`~repro.dialogue.state.DialogueState` (task, slots, phase,
  history, identification session),
* linked values volunteered before they are applicable (buffered until
  the matching entity identification starts), and
* the per-user :class:`~repro.dataaware.awareness.UserAwarenessModel` —
  what the paper learns "from interactions with the conversational
  agent" is a property of the user on the other end, not of the
  synthesized agent, so it lives with the conversation.

Because a context owns all of that, any number of them can be served
concurrently from one artifacts bundle without seeing each other's
slots, choices or awareness updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dataaware.awareness import UserAwarenessModel
from repro.dialogue.state import DialogueState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nlu.entity_linking import LinkedValue

__all__ = ["ConversationContext"]


@dataclass
class ConversationContext:
    """The mutable state of one conversation."""

    awareness: UserAwarenessModel
    state: DialogueState = field(default_factory=DialogueState)
    buffered: list["LinkedValue"] = field(default_factory=list)

    def reset(self) -> None:
        """Start a fresh conversation (awareness persists, as in the
        paper: what the user knows does not reset between dialogues)."""
        self.state = DialogueState()
        self.buffered.clear()

    def clear_buffered(self) -> None:
        self.buffered.clear()
