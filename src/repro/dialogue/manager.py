"""Hybrid dialogue manager: learned proposals constrained by state rules.

The learned :class:`~repro.dialogue.policy.NextActionModel` proposes the
next agent action from the dialogue history; the manager intersects that
proposal with the actions that are *legal* in the current state (you
cannot execute a transaction whose slots are missing, or confirm twice).
When the model's top choices are all illegal the manager falls back to
the deterministic task progression — the same guard rails a production
dialogue system puts around a learned policy.
"""

from __future__ import annotations

from repro.annotation import Task
from repro.dialogue import acts
from repro.dialogue.policy import NextActionModel
from repro.dialogue.state import DialogueState, Phase
from repro.errors import DialogueError

__all__ = ["DialogueManager"]


class DialogueManager:
    """Chooses the next high-level agent action."""

    def __init__(self, model: NextActionModel, tasks: list[Task]) -> None:
        self._model = model
        self._tasks = {task.name: task for task in tasks}

    # ------------------------------------------------------------------
    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise DialogueError(f"unknown task {name!r}") from None

    def task_names(self) -> list[str]:
        return sorted(self._tasks)

    # ------------------------------------------------------------------
    def legal_actions(self, state: DialogueState) -> list[str]:
        """Agent actions permitted by the current dialogue state."""
        if state.phase is Phase.IDLE:
            legal = [acts.AGENT_GOODBYE]
            if not state.greeted:
                legal.append(acts.AGENT_GREET)
            return legal
        if state.phase is Phase.GATHERING:
            assert state.task is not None
            legal = []
            for slot_name in state.missing_slots():
                slot = state.task.slot(slot_name)
                if slot.is_entity:
                    lookup = state.task.lookup_for(slot_name)
                    assert lookup is not None
                    legal.append(acts.identify_action(lookup.table))
                else:
                    legal.append(acts.ask_slot_action(slot_name))
                break  # only the *next* requirement is actionable
            if not legal:
                legal.append(acts.AGENT_CONFIRM)
            return legal
        if state.phase is Phase.CONFIRMING:
            return [acts.AGENT_EXECUTE, acts.AGENT_RESTART]
        if state.phase is Phase.CHOOSING:
            return []
        return [acts.AGENT_GOODBYE]

    def propose(self, state: DialogueState) -> str | None:
        """The learned model's best *legal* action (rule fallback)."""
        legal = self.legal_actions(state)
        if not legal:
            return None
        try:
            ranked = self._model.predict_ranked(state.recent_history())
        except Exception:
            ranked = []
        for action, __ in ranked:
            if action in legal:
                return action
        return legal[0]
