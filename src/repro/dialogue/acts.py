"""Dialogue-act vocabulary shared by self-play, DM training and runtime.

User acts are produced by the NLU (each maps to an intent); agent acts
are produced by the dialogue manager.  Task- and entity-parameterised
acts are realised as structured names (``request_ticket_reservation``,
``identify_screening``, ``ask_slot_ticket_amount``) so a flat next-action
classifier can be trained over them, exactly like the high-level actions
in the paper's Figure 3 DM training data.
"""

from __future__ import annotations

from repro.annotation import Task

__all__ = [
    "USER_GREET",
    "USER_GOODBYE",
    "USER_AFFIRM",
    "USER_DENY",
    "USER_ABORT",
    "USER_DONT_KNOW",
    "USER_INFORM",
    "USER_CHOOSE",
    "USER_THANK",
    "AGENT_GREET",
    "AGENT_GOODBYE",
    "AGENT_CONFIRM",
    "AGENT_EXECUTE",
    "AGENT_SUCCESS",
    "AGENT_FAILURE",
    "AGENT_ACK_ABORT",
    "AGENT_RESTART",
    "AGENT_FALLBACK",
    "request_action",
    "identify_action",
    "ask_slot_action",
    "user_acts_for_tasks",
    "agent_acts_for_tasks",
]

# User acts ------------------------------------------------------------
USER_GREET = "greet"
USER_GOODBYE = "goodbye"
USER_AFFIRM = "affirm"
USER_DENY = "deny"
USER_ABORT = "abort"
USER_DONT_KNOW = "dont_know"
USER_INFORM = "inform"
USER_CHOOSE = "choose"
USER_THANK = "thank"

# Agent acts -----------------------------------------------------------
AGENT_GREET = "agent_greet"
AGENT_GOODBYE = "agent_goodbye"
AGENT_CONFIRM = "confirm_transaction"
AGENT_EXECUTE = "execute_transaction"
AGENT_SUCCESS = "report_success"
AGENT_FAILURE = "report_failure"
AGENT_ACK_ABORT = "acknowledge_abort"
AGENT_RESTART = "restart_task"
AGENT_FALLBACK = "fallback"


def request_action(task_name: str) -> str:
    """User act that initiates a task."""
    return f"request_{task_name}"


def identify_action(entity_table: str) -> str:
    """Agent act that covers the whole entity-identification subdialogue."""
    return f"identify_{entity_table}"


def ask_slot_action(slot_name: str) -> str:
    """Agent act requesting one plain value slot."""
    return f"ask_slot_{slot_name}"


def user_acts_for_tasks(tasks: list[Task]) -> list[str]:
    acts = [
        USER_GREET,
        USER_GOODBYE,
        USER_AFFIRM,
        USER_DENY,
        USER_ABORT,
        USER_DONT_KNOW,
        USER_INFORM,
        USER_CHOOSE,
        USER_THANK,
    ]
    acts.extend(request_action(task.name) for task in tasks)
    return acts


def agent_acts_for_tasks(tasks: list[Task]) -> list[str]:
    acts = [
        AGENT_GREET,
        AGENT_GOODBYE,
        AGENT_CONFIRM,
        AGENT_EXECUTE,
        AGENT_SUCCESS,
        AGENT_FAILURE,
        AGENT_ACK_ABORT,
        AGENT_RESTART,
        AGENT_FALLBACK,
    ]
    for task in tasks:
        for lookup in task.lookups:
            action = identify_action(lookup.table)
            if action not in acts:
                acts.append(action)
        for slot in task.value_slots:
            action = ask_slot_action(slot.name)
            if action not in acts:
                acts.append(action)
    return acts
