"""Learned dialogue-management policy: next agent action from history.

Trained on the self-played flows (Section 3): every agent turn in a flow
is a supervised example "(recent action history) -> next agent action".
The model is a back-off n-gram predictor — it looks up the longest
matching history suffix seen in training and returns the most frequent
continuation.  This is the deterministic, inspectable equivalent of the
RNN-based dialogue policies RASA trains, and it is exactly as expressive
as the high-level flow data the paper synthesizes.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.errors import DialogueError, NotFittedError
from repro.synthesis.corpus import FlowDataset

__all__ = ["NextActionModel"]


class NextActionModel:
    """Back-off suffix model over dialogue-action histories."""

    def __init__(self, max_context: int = 4) -> None:
        if max_context < 1:
            raise DialogueError("max_context must be >= 1")
        self.max_context = max_context
        self._tables: list[dict[tuple[str, ...], Counter]] | None = None
        self._global: Counter | None = None

    # ------------------------------------------------------------------
    def fit(self, flows: FlowDataset) -> "NextActionModel":
        if len(flows) == 0:
            raise DialogueError("cannot train on an empty flow dataset")
        tables: list[dict[tuple[str, ...], Counter]] = [
            defaultdict(Counter) for __ in range(self.max_context + 1)
        ]
        global_counts: Counter = Counter()
        for history, action in flows.decision_points():
            global_counts[action] += 1
            for size in range(1, self.max_context + 1):
                suffix = tuple(history[-size:]) if size <= len(history) else None
                if suffix is not None and len(suffix) == size:
                    tables[size][suffix][action] += 1
            tables[0][()][action] += 1
        self._tables = [dict(t) for t in tables]
        self._global = global_counts
        return self

    # ------------------------------------------------------------------
    def predict(self, history: tuple[str, ...]) -> str:
        """Most likely next agent action given the action history."""
        return self.predict_ranked(history)[0][0]

    def predict_ranked(self, history: tuple[str, ...]) -> list[tuple[str, float]]:
        """Ranked ``(action, probability)`` list with back-off."""
        if self._tables is None or self._global is None:
            raise NotFittedError("next-action model is not trained")
        for size in range(min(self.max_context, len(history)), 0, -1):
            suffix = tuple(history[-size:])
            counts = self._tables[size].get(suffix)
            if counts:
                return _normalise(counts)
        return _normalise(self._global)

    def actions(self) -> list[str]:
        if self._global is None:
            raise NotFittedError("next-action model is not trained")
        return sorted(self._global)

    def evaluate(self, flows: FlowDataset) -> float:
        """Next-action accuracy over the decision points of ``flows``."""
        points = flows.decision_points()
        if not points:
            raise DialogueError("no decision points to evaluate")
        correct = sum(
            1 for history, action in points if self.predict(history) == action
        )
        return correct / len(points)


def _normalise(counts: Counter) -> list[tuple[str, float]]:
    total = sum(counts.values())
    ranked = [(action, count / total) for action, count in counts.most_common()]
    return ranked
