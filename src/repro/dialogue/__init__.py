"""Dialogue management: acts, state tracking, learned policy, manager."""

from repro.dialogue import acts
from repro.dialogue.context import ConversationContext
from repro.dialogue.manager import DialogueManager
from repro.dialogue.policy import NextActionModel
from repro.dialogue.state import DialogueState, Phase

__all__ = [
    "ConversationContext",
    "DialogueManager",
    "DialogueState",
    "NextActionModel",
    "Phase",
    "acts",
]
