"""Dialogue management: acts, state tracking, learned policy, manager."""

from repro.dialogue import acts
from repro.dialogue.manager import DialogueManager
from repro.dialogue.policy import NextActionModel
from repro.dialogue.state import DialogueState, Phase

__all__ = [
    "DialogueManager",
    "DialogueState",
    "NextActionModel",
    "Phase",
    "acts",
]
