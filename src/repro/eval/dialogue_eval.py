"""Simulated-user evaluation of slot-selection policies (Section 4 eval).

A :class:`SimulatedUser` impersonates a user who wants a specific target
entity: asked about an attribute, they answer with the target's true
value with a probability given by a ground-truth awareness table (and
say "don't know" otherwise).  :func:`run_episode` plays one full
identification; :class:`PolicyExperiment` sweeps policies over many
targets and reports the turn statistics the paper compares ("speedup in
terms of interaction turns").
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.annotation import EntityLookup, SchemaAnnotations
from repro.dataaware import (
    AttributeValueCache,
    CandidateSet,
    IdentificationSession,
    IdentificationStatus,
    SlotSelectionPolicy,
)
from repro.db.catalog import Catalog, ColumnRef
from repro.db.database import Database
from repro.db.query import eq
from repro.errors import ReproError

__all__ = ["SimulatedUser", "EpisodeResult", "PolicyExperiment", "run_episode"]


class SimulatedUser:
    """A user who knows their target entity with attribute-level awareness.

    ``awareness`` maps attributes to the ground-truth probability that
    the user can provide the value; attributes not listed fall back to
    ``annotations``' priors (the developer's estimate, which the
    simulation treats as roughly correct).
    """

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        annotations: SchemaAnnotations,
        lookup: EntityLookup,
        target_row_id: int,
        seed: int = 0,
        awareness: dict[ColumnRef, float] | None = None,
        cache: AttributeValueCache | None = None,
    ) -> None:
        self._database = database
        self._catalog = catalog
        self._annotations = annotations
        self._lookup = lookup
        self.target_row_id = target_row_id
        self._rng = random.Random(seed)
        self._awareness = awareness or {}
        self._cache = cache

    def knows(self, attribute: ColumnRef) -> bool:
        probability = self._awareness.get(attribute)
        if probability is None:
            probability = self._annotations.awareness_prior(
                attribute.table, attribute.column
            )
        return self._rng.random() < probability

    def value_of(self, attribute: ColumnRef):
        """The target entity's true value for ``attribute`` (or None)."""
        # Seed through the engine with the key pushed down: without a
        # shared cache this computes value maps for the one target row
        # instead of the whole table.
        base = CandidateSet.initial(
            self._database, self._catalog, self._lookup.table,
            shared_cache=self._cache,
            where=eq(self._lookup.key_column, self.target_key()),
        )
        values = base.values_for(attribute).get(self.target_row_id, frozenset())
        if not values:
            return None
        # Deterministic pick among multi-values (e.g. one of the actors).
        return sorted(values, key=str)[0]

    def target_key(self):
        row = self._database.table(self._lookup.table).get(self.target_row_id)
        return row[self._lookup.key_column]


@dataclass(frozen=True)
class EpisodeResult:
    """Outcome of one simulated identification episode."""

    policy: str
    turns: int
    questions: int
    success: bool
    status: IdentificationStatus


def run_episode(
    database: Database,
    catalog: Catalog,
    lookup: EntityLookup,
    policy: SlotSelectionPolicy,
    user: SimulatedUser,
    cache: AttributeValueCache | None = None,
    choice_list_size: int = 3,
    max_questions: int = 25,
) -> EpisodeResult:
    """Play one identification episode of ``policy`` against ``user``."""
    candidates = CandidateSet.initial(
        database, catalog, lookup.table, shared_cache=cache
    )
    session = IdentificationSession(
        candidates,
        policy,
        lookup.key_column,
        choice_list_size=choice_list_size,
        max_questions=max_questions,
    )
    while not session.finished:
        attribute = session.next_question()
        if attribute is None:
            break
        value = user.value_of(attribute) if user.knows(attribute) else None
        if value is None:
            session.dont_know()
        else:
            session.answer(value)
    if session.status is IdentificationStatus.CHOICE_LIST:
        # The user recognises their entity in the presented list.
        session.choose(user.target_key())
    outcome = session.outcome()
    success = (
        session.status is IdentificationStatus.UNIQUE
        and session.candidates.the_row()[lookup.key_column] == user.target_key()
    )
    return EpisodeResult(
        policy=policy.name,
        turns=outcome.turns,
        questions=outcome.questions_asked,
        success=success,
        status=session.status,
    )


@dataclass(frozen=True)
class PolicySummary:
    """Aggregate over many episodes of one policy."""

    policy: str
    episodes: int
    mean_turns: float
    median_turns: float
    p90_turns: float
    success_rate: float

    def speedup_vs(self, other: "PolicySummary") -> float:
        """Relative turn reduction vs ``other`` (0.8 = 80 % fewer turns)."""
        if other.mean_turns == 0:
            return 0.0
        return 1.0 - self.mean_turns / other.mean_turns


class PolicyExperiment:
    """Sweeps one or more policies over sampled identification targets."""

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        annotations: SchemaAnnotations,
        lookup: EntityLookup,
        seed: int = 17,
        awareness: dict[ColumnRef, float] | None = None,
        use_cache: bool = True,
    ) -> None:
        self._database = database
        self._catalog = catalog
        self._annotations = annotations
        self._lookup = lookup
        self._seed = seed
        self._awareness = awareness
        self._cache = (
            AttributeValueCache(database, catalog) if use_cache else None
        )

    def run(
        self,
        policy: SlotSelectionPolicy,
        n_episodes: int = 50,
    ) -> tuple[PolicySummary, list[EpisodeResult]]:
        rng = random.Random(self._seed)
        row_ids = self._database.table(self._lookup.table).row_ids()
        if not row_ids:
            raise ReproError(f"table {self._lookup.table!r} is empty")
        results: list[EpisodeResult] = []
        for episode in range(n_episodes):
            target = rng.choice(row_ids)
            user = SimulatedUser(
                self._database,
                self._catalog,
                self._annotations,
                self._lookup,
                target,
                seed=rng.randrange(1 << 30),
                awareness=self._awareness,
                cache=self._cache,
            )
            results.append(
                run_episode(
                    self._database,
                    self._catalog,
                    self._lookup,
                    policy,
                    user,
                    cache=self._cache,
                )
            )
        return self._summarise(policy.name, results), results

    @staticmethod
    def _summarise(name: str, results: list[EpisodeResult]) -> PolicySummary:
        turns = [r.turns for r in results]
        return PolicySummary(
            policy=name,
            episodes=len(results),
            mean_turns=statistics.mean(turns),
            median_turns=statistics.median(turns),
            p90_turns=sorted(turns)[max(0, int(0.9 * len(turns)) - 1)],
            success_rate=sum(r.success for r in results) / len(results),
        )
