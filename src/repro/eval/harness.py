"""Experiment harness: result tables in the style of the paper's claims.

Small utilities to run named experiment configurations and print aligned
text tables, used by the ``benchmarks/`` drivers and the examples so the
reproduction output can be compared against EXPERIMENTS.md at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An aligned text table with a caption."""

    caption: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def formatted(self) -> str:
        def render(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        rendered = [[render(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in rendered))
            if rendered
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.caption, ""]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.formatted())
        print()
