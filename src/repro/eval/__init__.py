"""Evaluation: metrics, simulated-user dialogue eval, result tables."""

from repro.eval.dialogue_eval import (
    EpisodeResult,
    PolicyExperiment,
    PolicySummary,
    SimulatedUser,
    run_episode,
)
from repro.eval.harness import ResultTable
from repro.eval.metrics import (
    PRF,
    evaluate_slot_model,
    intent_accuracy,
    intent_confusion,
    macro_f1,
    slot_prf,
)

__all__ = [
    "PRF",
    "EpisodeResult",
    "PolicyExperiment",
    "PolicySummary",
    "ResultTable",
    "SimulatedUser",
    "evaluate_slot_model",
    "intent_accuracy",
    "intent_confusion",
    "macro_f1",
    "run_episode",
    "slot_prf",
]
