"""Evaluation metrics: intent accuracy and conlleval-style slot F1.

Slot F1 follows the CoNLL convention used by the ATIS literature: a
predicted slot counts as correct only when both its label and its exact
span match a gold slot (here compared on normalised value text, which is
equivalent for our aligned corpora).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ReproError
from repro.synthesis.corpus import NLUDataset, SlotSpan

__all__ = [
    "PRF",
    "slot_prf",
    "intent_accuracy",
    "intent_confusion",
    "macro_f1",
]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple with raw counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __add__(self, other: "PRF") -> "PRF":
        return PRF(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def _span_key(span: SlotSpan) -> tuple[str, str]:
    return (span.name, span.value.strip().lower())


def slot_prf(
    gold: list[tuple[SlotSpan, ...]],
    predicted: list[list[SlotSpan]],
) -> PRF:
    """Micro-averaged slot P/R/F1 over parallel gold/predicted lists."""
    if len(gold) != len(predicted):
        raise ReproError(
            f"gold ({len(gold)}) and predictions ({len(predicted)}) differ"
        )
    tp = fp = fn = 0
    for gold_spans, predicted_spans in zip(gold, predicted):
        gold_keys = Counter(_span_key(s) for s in gold_spans)
        pred_keys = Counter(_span_key(s) for s in predicted_spans)
        overlap = gold_keys & pred_keys
        matched = sum(overlap.values())
        tp += matched
        fp += sum(pred_keys.values()) - matched
        fn += sum(gold_keys.values()) - matched
    return PRF(tp, fp, fn)


def intent_accuracy(gold: list[str], predicted: list[str]) -> float:
    if len(gold) != len(predicted):
        raise ReproError("gold and predictions differ in length")
    if not gold:
        raise ReproError("cannot compute accuracy over zero examples")
    return sum(1 for g, p in zip(gold, predicted) if g == p) / len(gold)


def intent_confusion(
    gold: list[str], predicted: list[str]
) -> dict[tuple[str, str], int]:
    """``(gold, predicted) -> count`` confusion counts."""
    confusion: Counter = Counter()
    for g, p in zip(gold, predicted):
        confusion[(g, p)] += 1
    return dict(confusion)


def macro_f1(gold: list[str], predicted: list[str]) -> float:
    """Macro-averaged F1 over intent labels."""
    labels = sorted(set(gold))
    if not labels:
        raise ReproError("cannot compute macro F1 over zero examples")
    total = 0.0
    for label in labels:
        tp = sum(1 for g, p in zip(gold, predicted) if g == label and p == label)
        fp = sum(1 for g, p in zip(gold, predicted) if g != label and p == label)
        fn = sum(1 for g, p in zip(gold, predicted) if g == label and p != label)
        total += PRF(tp, fp, fn).f1
    return total / len(labels)


def evaluate_slot_model(model, dataset: NLUDataset) -> PRF:
    """Run ``model.tag`` over a dataset and score against gold slots."""
    gold = [example.slots for example in dataset]
    predicted = [model.tag(example.text) for example in dataset]
    return slot_prf(gold, predicted)
