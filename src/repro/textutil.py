"""String-similarity primitives shared by entity linking and candidates.

The demo agent "corrects misspellings" of user-provided values; both the
NLU entity linker and the candidate-set refinement rely on the same
tolerant string matching: Levenshtein edit distance (iterative DP with
two rows) and character-trigram Jaccard similarity for longer strings.
"""

from __future__ import annotations

__all__ = [
    "damerau_levenshtein",
    "levenshtein",
    "normalized_edit_similarity",
    "trigrams",
    "trigram_similarity",
    "best_match",
]


def damerau_levenshtein(left: str, right: str) -> int:
    """Optimal-string-alignment distance (edits + adjacent transpositions).

    A transposition ("gmup" -> "gump") counts as one edit, matching how
    humans actually mistype values.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    rows = [list(range(len(right) + 1))]
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            best = min(
                rows[i - 1][j] + 1,
                current[j - 1] + 1,
                rows[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and left_char == right[j - 2]
                and left[i - 2] == right_char
            ):
                best = min(best, rows[i - 2][j - 2] + 1)
            current.append(best)
        rows.append(current)
    return rows[-1][-1]


def levenshtein(left: str, right: str) -> int:
    """Edit distance between two strings (insert/delete/substitute = 1)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def normalized_edit_similarity(left: str, right: str) -> float:
    """1 - normalised edit distance, in [0, 1] (1 = identical)."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein(left, right) / longest


def trigrams(text: str) -> set[str]:
    """Padded character trigrams of a lower-cased string."""
    padded = f"  {text.lower().strip()} "
    if len(padded.strip()) == 0:
        return set()
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(left: str, right: str) -> float:
    """Jaccard similarity of character trigram sets."""
    left_grams = trigrams(left)
    right_grams = trigrams(right)
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    union = left_grams | right_grams
    return len(left_grams & right_grams) / len(union)


def best_match(
    needle: str,
    haystack: list[str],
    threshold: float = 0.75,
) -> tuple[str, float] | None:
    """Best fuzzy match for ``needle`` among ``haystack`` strings.

    Uses a blend of normalised edit similarity and trigram similarity;
    returns ``(match, score)`` or ``None`` when nothing reaches
    ``threshold``.  Exact (case-insensitive) matches short-circuit.
    """
    target = needle.strip().lower()
    best: tuple[str, float] | None = None
    for candidate in haystack:
        lowered = candidate.strip().lower()
        if lowered == target:
            return (candidate, 1.0)
        score = 0.6 * normalized_edit_similarity(target, lowered)
        score += 0.4 * trigram_similarity(target, lowered)
        if best is None or score > best[1]:
            best = (candidate, score)
    if best is not None and best[1] >= threshold:
        return best
    return None
