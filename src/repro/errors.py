"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems define narrower
subclasses: the database engine raises :class:`DatabaseError` and its
children, the synthesis pipeline raises :class:`SynthesisError`, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Database engine
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for errors raised by the :mod:`repro.db` engine."""


class SchemaError(DatabaseError):
    """A schema definition is invalid (duplicate column, bad FK, ...)."""


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class ConstraintViolation(DatabaseError):
    """A primary-key, foreign-key, unique or not-null constraint failed."""


class UnknownTableError(DatabaseError):
    """A referenced table does not exist in the database."""


class UnknownColumnError(DatabaseError):
    """A referenced column does not exist in its table."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. commit without begin)."""


class ProcedureError(DatabaseError):
    """A stored procedure is invalid or was invoked incorrectly."""


class QueryError(DatabaseError):
    """A query expression is malformed."""


# ---------------------------------------------------------------------------
# Annotation / task extraction
# ---------------------------------------------------------------------------

class AnnotationError(ReproError):
    """A schema annotation references unknown schema elements."""


class ExtractionError(ReproError):
    """Task extraction could not derive slots from a procedure."""


# ---------------------------------------------------------------------------
# Training-data synthesis
# ---------------------------------------------------------------------------

class SynthesisError(ReproError):
    """Base class for training-data generation errors."""


class TemplateError(SynthesisError):
    """A natural-language template is malformed or references bad slots."""


# ---------------------------------------------------------------------------
# NLU / dialogue
# ---------------------------------------------------------------------------

class NLUError(ReproError):
    """Base class for natural-language-understanding errors."""


class NotFittedError(NLUError):
    """A model was used before being trained."""


class DialogueError(ReproError):
    """Illegal dialogue state or action."""


class PolicyError(ReproError):
    """A slot-selection policy was misconfigured or misused."""


# ---------------------------------------------------------------------------
# Serving runtime
# ---------------------------------------------------------------------------

class ServingError(ReproError):
    """Base class for multi-session serving runtime errors."""


class UnknownSessionError(ServingError):
    """A session id does not exist (never created, closed, or evicted)."""


class SessionExpiredError(UnknownSessionError):
    """A session exceeded its idle TTL and was reclaimed."""
