"""repro: a reproduction of CAT (VLDB 2022).

CAT synthesizes data-aware conversational agents for transactional
databases.  The top-level package re-exports the main entry points; see
the subpackages for the full API:

* :mod:`repro.db` — in-memory relational OLTP engine,
* :mod:`repro.annotation` — schema annotation and task extraction,
* :mod:`repro.synthesis` — training-data generation,
* :mod:`repro.nlu` — intent classification, slot filling, entity linking,
* :mod:`repro.dialogue` — dialogue management,
* :mod:`repro.dataaware` — the data-aware slot-selection policy,
* :mod:`repro.agent` — the runtime agent and the ``CAT`` builder facade,
* :mod:`repro.serving` — the concurrent multi-session runtime,
* :mod:`repro.datasets` — synthetic cinema database and ATIS-like corpus,
* :mod:`repro.eval` — metrics and experiment harnesses.
"""

from repro.agent import (
    CAT,
    AgentArtifacts,
    ConversationalAgent,
    ConversationSession,
)
from repro.db import Database, DatabaseSchema
from repro.dialogue import ConversationContext
from repro.errors import ReproError
from repro.serving import AgentRuntime, SessionStore

__version__ = "1.1.0"

__all__ = [
    "CAT",
    "AgentArtifacts",
    "AgentRuntime",
    "ConversationContext",
    "ConversationSession",
    "ConversationalAgent",
    "Database",
    "DatabaseSchema",
    "ReproError",
    "SessionStore",
    "__version__",
]
