"""Schema annotation and task extraction (the paper's Figure 3/4 inputs)."""

from repro.annotation.annotations import AttributeAnnotation, SchemaAnnotations
from repro.annotation.extraction import (
    EntityLookup,
    SlotSpec,
    Task,
    TaskExtractor,
)

__all__ = [
    "AttributeAnnotation",
    "EntityLookup",
    "SchemaAnnotations",
    "SlotSpec",
    "Task",
    "TaskExtractor",
]
