"""Schema annotations: the only database-specific manual input CAT needs.

Figure 4 of the paper shows a GUI in which the developer annotates the
schema before synthesis.  The annotation payload is small:

* per attribute, an *awareness prior* — how likely a user is to know the
  value (IDs and technical fields get ~0),
* a *never-ask* flag for attributes the agent must not request,
* a human-readable *display name* used in generated prompts
  ("movie title" instead of ``movie.title``), and
* optional example values / synonyms that seed the NL templates.

:class:`SchemaAnnotations` validates every annotation against the live
schema and supplies sensible defaults (primary keys and FK columns are
ID-like → never ask, awareness prior near zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.db.catalog import ColumnRef
from repro.errors import AnnotationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["AttributeAnnotation", "SchemaAnnotations"]

_DEFAULT_ID_PRIOR = 0.02
_DEFAULT_PRIOR = 0.5


@dataclass(frozen=True)
class AttributeAnnotation:
    """Annotation of one ``table.column`` attribute."""

    awareness_prior: float = _DEFAULT_PRIOR
    never_ask: bool = False
    display_name: str | None = None
    synonyms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.awareness_prior <= 1.0:
            raise AnnotationError(
                f"awareness prior must be in [0, 1], got {self.awareness_prior}"
            )


class SchemaAnnotations:
    """Validated collection of attribute annotations for one database."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._annotations: dict[ColumnRef, AttributeAnnotation] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def annotate(
        self,
        table: str,
        column: str,
        awareness_prior: float | None = None,
        never_ask: bool | None = None,
        display_name: str | None = None,
        synonyms: tuple[str, ...] | None = None,
    ) -> AttributeAnnotation:
        """Set (or update) the annotation of ``table.column``."""
        self._check_ref(table, column)
        ref = ColumnRef(table, column)
        current = self._annotations.get(ref, self._default_for(ref))
        updated = AttributeAnnotation(
            awareness_prior=(
                current.awareness_prior if awareness_prior is None else awareness_prior
            ),
            never_ask=current.never_ask if never_ask is None else never_ask,
            display_name=(
                current.display_name if display_name is None else display_name
            ),
            synonyms=current.synonyms if synonyms is None else tuple(synonyms),
        )
        self._annotations[ref] = updated
        return updated

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, table: str, column: str) -> AttributeAnnotation:
        """Annotation of ``table.column``, defaulting heuristically."""
        self._check_ref(table, column)
        ref = ColumnRef(table, column)
        return self._annotations.get(ref, self._default_for(ref))

    def awareness_prior(self, table: str, column: str) -> float:
        return self.get(table, column).awareness_prior

    def may_ask(self, table: str, column: str) -> bool:
        return not self.get(table, column).never_ask

    def display_name(self, table: str, column: str) -> str:
        annotation = self.get(table, column)
        if annotation.display_name:
            return annotation.display_name
        return column.replace("_", " ")

    def explicit_refs(self) -> Iterator[ColumnRef]:
        """All attributes with a developer-set (non-default) annotation."""
        return iter(sorted(self._annotations))

    # ------------------------------------------------------------------
    # Defaults
    # ------------------------------------------------------------------
    def _default_for(self, ref: ColumnRef) -> AttributeAnnotation:
        """ID-like columns default to never-ask with a near-zero prior.

        "For instance, even though the screening_id is very useful and
        ultimately required for the transaction, the user will most likely
        not be aware of it" (Section 2).
        """
        schema = self._database.schema.table(ref.table)
        is_pk = schema.primary_key == ref.column
        is_fk = schema.foreign_key_for(ref.column) is not None
        looks_like_id = ref.column.endswith("_id") or ref.column == "id"
        if is_pk or is_fk or looks_like_id:
            return AttributeAnnotation(
                awareness_prior=_DEFAULT_ID_PRIOR, never_ask=True
            )
        return AttributeAnnotation()

    def _check_ref(self, table: str, column: str) -> None:
        try:
            self._database.schema.table(table).column(column)
        except Exception as exc:
            raise AnnotationError(
                f"annotation references unknown attribute {table}.{column}"
            ) from exc

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation of the explicit annotations."""
        return {
            str(ref): {
                "awareness_prior": annotation.awareness_prior,
                "never_ask": annotation.never_ask,
                "display_name": annotation.display_name,
                "synonyms": list(annotation.synonyms),
            }
            for ref, annotation in sorted(self._annotations.items())
        }

    @classmethod
    def from_dict(
        cls, database: "Database", payload: dict[str, Any]
    ) -> "SchemaAnnotations":
        annotations = cls(database)
        for key, body in payload.items():
            table, __, column = key.partition(".")
            if not column:
                raise AnnotationError(f"malformed annotation key {key!r}")
            annotations.annotate(
                table,
                column,
                awareness_prior=body.get("awareness_prior"),
                never_ask=body.get("never_ask"),
                display_name=body.get("display_name"),
                synonyms=tuple(body.get("synonyms", ())),
            )
        return annotations
