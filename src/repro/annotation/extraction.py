"""Task extraction: derive dialogue tasks, slots and actions from the DB.

Given a database and its stored procedures, the extractor produces the
model a dialogue-system developer would otherwise write by hand (Figure 3
of the paper, "Extracted Tasks and Schema Information"):

* one :class:`Task` per procedure,
* one :class:`SlotSpec` per parameter — either a *value slot* (plain
  typed value such as a ticket count) or an *entity slot* (a key the user
  must identify indirectly, e.g. ``screening_id``),
* per entity slot, the set of *identifying attributes* the user may be
  asked about instead of the raw key: askable columns of the entity table
  plus askable columns of FK-reachable tables within a hop bound, and
* the derived dialogue action vocabulary used for self-play
  (``request_<task>``, ``identify_<entity>``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.annotations import SchemaAnnotations
from repro.db.catalog import Catalog, ColumnRef
from repro.db.procedures import Parameter, Procedure
from repro.db.types import DataType
from repro.errors import ExtractionError

__all__ = ["SlotSpec", "EntityLookup", "Task", "TaskExtractor"]


@dataclass(frozen=True)
class SlotSpec:
    """One dialogue slot derived from a procedure parameter."""

    name: str
    dtype: DataType
    display_name: str
    optional: bool = False
    references: tuple[str, str] | None = None

    @property
    def is_entity(self) -> bool:
        return self.references is not None


@dataclass(frozen=True)
class EntityLookup:
    """How to identify one entity slot through dialogue.

    ``identifying_attributes`` maps hop distance from the entity table to
    the column refs askable at that distance (0 = own columns, 1 = one FK
    hop away, ...).
    """

    slot: str
    table: str
    key_column: str
    identifying_attributes: dict[int, tuple[ColumnRef, ...]]

    def all_attributes(self) -> tuple[ColumnRef, ...]:
        refs: list[ColumnRef] = []
        for hop in sorted(self.identifying_attributes):
            refs.extend(self.identifying_attributes[hop])
        return tuple(refs)


@dataclass(frozen=True)
class Task:
    """A user-facing task derived from one stored procedure."""

    name: str
    description: str
    slots: tuple[SlotSpec, ...]
    lookups: tuple[EntityLookup, ...]

    def slot(self, name: str) -> SlotSpec:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise ExtractionError(f"task {self.name!r} has no slot {name!r}")

    def lookup_for(self, slot_name: str) -> EntityLookup | None:
        for lookup in self.lookups:
            if lookup.slot == slot_name:
                return lookup
        return None

    @property
    def value_slots(self) -> tuple[SlotSpec, ...]:
        return tuple(s for s in self.slots if not s.is_entity)

    @property
    def entity_slots(self) -> tuple[SlotSpec, ...]:
        return tuple(s for s in self.slots if s.is_entity)

    # Dialogue action names derived from the task (used in self-play).
    @property
    def request_action(self) -> str:
        return f"request_{self.name}"

    @property
    def identify_actions(self) -> tuple[str, ...]:
        return tuple(f"identify_{lookup.table}" for lookup in self.lookups)


class TaskExtractor:
    """Extracts :class:`Task` objects from a database's procedures."""

    def __init__(
        self,
        catalog: Catalog,
        annotations: SchemaAnnotations,
        max_join_hops: int = 2,
    ) -> None:
        if max_join_hops < 0:
            raise ExtractionError("max_join_hops must be >= 0")
        self._catalog = catalog
        self._annotations = annotations
        self._max_join_hops = max_join_hops

    # ------------------------------------------------------------------
    def extract_all(self) -> list[Task]:
        return [self.extract(p) for p in self._catalog.procedures()]

    def extract(self, procedure: Procedure) -> Task:
        slots = tuple(self._slot_for(p) for p in procedure.parameters)
        lookups = tuple(
            self._lookup_for(slot)
            for slot in slots
            if slot.references is not None
        )
        return Task(
            name=procedure.name,
            description=procedure.description,
            slots=slots,
            lookups=lookups,
        )

    # ------------------------------------------------------------------
    def _slot_for(self, parameter: Parameter) -> SlotSpec:
        if parameter.references is not None:
            table, column = parameter.references
            display = self._annotations.display_name(table, column)
        else:
            display = parameter.name.replace("_", " ")
        return SlotSpec(
            name=parameter.name,
            dtype=parameter.dtype,
            display_name=display,
            optional=parameter.optional,
            references=parameter.references,
        )

    def _lookup_for(self, slot: SlotSpec) -> EntityLookup:
        assert slot.references is not None
        table, key_column = slot.references
        distances = self._catalog.tables_within(table, self._max_join_hops)
        by_hop: dict[int, list[ColumnRef]] = {}
        for other_table, hops in sorted(distances.items(), key=lambda kv: (kv[1], kv[0])):
            for column in self._catalog.columns(other_table):
                if not self._annotations.may_ask(other_table, column.name):
                    continue
                by_hop.setdefault(hops, []).append(
                    ColumnRef(other_table, column.name)
                )
        identifying = {hop: tuple(refs) for hop, refs in by_hop.items()}
        if not any(identifying.values()):
            raise ExtractionError(
                f"entity slot {slot.name!r}: no askable identifying attribute "
                f"for table {table!r}; relax the never-ask annotations"
            )
        return EntityLookup(
            slot=slot.name,
            table=table,
            key_column=key_column,
            identifying_attributes=identifying,
        )
