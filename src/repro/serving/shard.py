"""Session-affinity sharding across worker processes.

One Python process can overlap read-only turn work on threads (the MVCC
snapshot layer removed the lock that used to serialise them), but the
GIL still caps CPU-bound NLU + query execution at one core.  The shard
tier scales past that the way the paper's "millions of users"
deployment would: N worker processes, each hosting its own
:class:`~repro.serving.runtime.AgentRuntime` over a *replica* of the
database (synthesized once and shipped via the format-v3 snapshot, or
inherited on fork), with a router in front that hashes session ids to
workers.  Affinity is total — a session's every turn lands on the same
worker, so dialogue state, per-session connections and transcripts
never cross process boundaries.

Replicas imply per-worker writes stay per-worker (a booking commits on
the owning session's replica only); that is the right trade for the
read-dominated conversational workload this tier exists to scale, and
it mirrors the share-nothing partitioning argument of the HTAP line of
work in PAPERS.md.

The wire protocol is deliberately tiny: one duplex pipe per worker,
``(op, payload)`` request tuples answered by ``("ok", value)`` or
``("err", kind, message)``; a per-worker mutex serialises request/reply
pairs while different workers proceed in parallel.  Replies carry plain
dicts (no agent objects cross the pipe), surfaced as
:class:`ShardReply`.

``bootstrap`` builds the worker's runtime.  Pass a callable for
fork-based starts (the child inherits it — and, typically, the already
built runtime closed over it, making worker start effectively free) or
a ``"module:attribute"`` string for spawn-safe starts; either receives
``bootstrap_arg`` (e.g. a snapshot path) when given.  ``inprocess=True``
skips processes entirely and hosts every "worker" runtime in the
calling process — the degenerate mode used by tests and single-core
machines.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ServingError, SessionExpiredError, UnknownSessionError

__all__ = ["ShardReply", "ShardRouter", "ShardStats", "WorkerStats"]

_shard_session_counter = itertools.count(1)

_ERROR_KINDS: dict[str, type[Exception]] = {
    "unknown_session": UnknownSessionError,
    "session_expired": SessionExpiredError,
    "serving": ServingError,
}


@dataclass(frozen=True)
class ShardReply:
    """One turn's reply as it crossed the worker pipe."""

    text: str
    executed: bool
    intent: str | None


@dataclass(frozen=True)
class WorkerStats:
    """One worker's serving counters (a pipe-safe RuntimeStats cut)."""

    worker: int
    live_sessions: int
    turns_served: int
    transactions_committed: int
    transactions_aborted: int
    snapshot_version: int
    commit_waits: int


@dataclass(frozen=True)
class ShardStats:
    """Aggregate + per-worker counters of the shard tier."""

    workers: tuple[WorkerStats, ...]

    @property
    def turns_served(self) -> int:
        return sum(w.turns_served for w in self.workers)

    @property
    def live_sessions(self) -> int:
        return sum(w.live_sessions for w in self.workers)

    @property
    def per_worker_turns(self) -> tuple[int, ...]:
        return tuple(w.turns_served for w in self.workers)


def _resolve_bootstrap(spec: Any) -> Callable[..., Any]:
    """A ``"module:attribute"`` spec (or a callable, passed through)."""
    if callable(spec):
        return spec
    module_name, __, attribute = str(spec).partition(":")
    if not attribute:
        raise ServingError(
            f"bootstrap spec {spec!r} is not 'module:attribute'"
        )
    import importlib

    target: Any = importlib.import_module(module_name)
    for part in attribute.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise ServingError(f"bootstrap {spec!r} resolved to a non-callable")
    return target


def _build_runtime(bootstrap: Any, bootstrap_arg: Any) -> Any:
    factory = _resolve_bootstrap(bootstrap)
    if bootstrap_arg is None:
        return factory()
    return factory(bootstrap_arg)


def _serve_request(runtime: Any, op: str, payload: Any) -> Any:
    """Dispatch one router request against the worker's runtime."""
    if op == "respond":
        session_id, text = payload
        reply = runtime.respond(session_id, text)
        return {
            "text": reply.text,
            "executed": reply.executed,
            "intent": reply.nlu.intent if reply.nlu else None,
        }
    if op == "create_session":
        return runtime.create_session(payload)
    if op == "end_session":
        runtime.end_session(payload)
        return None
    if op == "session_ids":
        return runtime.session_ids()
    if op == "stats":
        stats = runtime.stats()
        return {
            "live_sessions": stats.live_sessions,
            "turns_served": stats.turns_served,
            "transactions_committed": stats.transactions_committed,
            "transactions_aborted": stats.transactions_aborted,
            "snapshot_version": stats.snapshot_version,
            "commit_waits": stats.commit_waits,
        }
    if op == "storage_stats":
        return {
            name: {
                "sealed_rows": s.sealed_rows,
                "delta_rows": s.delta_rows,
                "retired_rows": s.retired_rows,
                "sealed_epoch": s.sealed_epoch,
                "compactions": s.compactions,
                "last_compaction_seconds": s.last_compaction_seconds,
            }
            for name, s in runtime.storage_stats().items()
        }
    if op == "compact":
        return runtime.compact()
    if op == "autotune":
        # The status dict is already pipe-safe (plain scalars and
        # lists; column values in MCV buckets are schema types).
        return runtime.autotune_status()
    if op == "replica_status":
        # Pipe-safe by construction (ReplicaManager.status emits plain
        # scalars); {"enabled": False} when the worker has no replicas.
        return runtime.replica_status()
    raise ServingError(f"unknown shard op {op!r}")


def _error_kind(exc: BaseException) -> str:
    if isinstance(exc, UnknownSessionError):
        return "unknown_session"
    if isinstance(exc, SessionExpiredError):
        return "session_expired"
    if isinstance(exc, ServingError):
        return "serving"
    return "runtime"


def _worker_main(conn, bootstrap: Any, bootstrap_arg: Any) -> None:
    """Worker process entry: build the runtime, answer until shutdown."""
    try:
        runtime = _build_runtime(bootstrap, bootstrap_arg)
    except BaseException as exc:  # noqa: BLE001 - reported to the router
        conn.send(("err", _error_kind(exc), f"bootstrap failed: {exc}"))
        conn.close()
        return
    conn.send(("ok", "ready"))
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:
            break
        if op == "shutdown":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", _serve_request(runtime, op, payload)))
        except BaseException as exc:  # noqa: BLE001 - crossed back as err
            conn.send(("err", _error_kind(exc), str(exc)))
    conn.close()


class _ProcessWorker:
    """Router-side handle of one worker process."""

    def __init__(self, index: int, ctx, bootstrap: Any, bootstrap_arg: Any):
        self.index = index
        self.lock = threading.Lock()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, bootstrap, bootstrap_arg),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        status = self._conn.recv()
        if status[0] != "ok":
            raise ServingError(f"worker {index}: {status[2]}")

    def request(self, op: str, payload: Any) -> Any:
        with self.lock:
            self._conn.send((op, payload))
            reply = self._conn.recv()
        if reply[0] == "ok":
            return reply[1]
        __, kind, message = reply
        raise _ERROR_KINDS.get(kind, ServingError)(message)

    def close(self) -> None:
        try:
            self.request("shutdown", None)
        except (OSError, EOFError, BrokenPipeError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
        self._conn.close()


class _InprocessWorker:
    """One "worker" hosted in the calling process (no pipe, no fork)."""

    def __init__(self, index: int, bootstrap: Any, bootstrap_arg: Any):
        self.index = index
        self.lock = threading.Lock()
        self._runtime = _build_runtime(bootstrap, bootstrap_arg)

    def request(self, op: str, payload: Any) -> Any:
        if op == "shutdown":
            return None
        return _serve_request(self._runtime, op, payload)

    def close(self) -> None:
        pass


class ShardRouter:
    """Hash session ids across N single-runtime workers.

    The router is thread-safe: callers on different sessions whose
    shards differ proceed fully in parallel (distinct pipes, distinct
    processes, distinct GILs).
    """

    def __init__(
        self,
        workers: int,
        bootstrap: Any,
        bootstrap_arg: Any = None,
        start_method: str | None = None,
        inprocess: bool = False,
    ) -> None:
        if workers < 1:
            raise ServingError("workers must be >= 1")
        self._workers: list[Any] = []
        try:
            if inprocess:
                for index in range(workers):
                    self._workers.append(
                        _InprocessWorker(index, bootstrap, bootstrap_arg)
                    )
            else:
                ctx = multiprocessing.get_context(start_method)
                for index in range(workers):
                    self._workers.append(
                        _ProcessWorker(index, ctx, bootstrap, bootstrap_arg)
                    )
        except BaseException:
            self.close()
            raise
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def shard_of(self, session_id: str) -> int:
        """The worker index owning ``session_id`` (stable affinity)."""
        return zlib.crc32(session_id.encode("utf-8")) % len(self._workers)

    def _worker_for(self, session_id: str):
        return self._workers[self.shard_of(session_id)]

    # ------------------------------------------------------------------
    def create_session(self, session_id: str | None = None) -> str:
        if session_id is None:
            session_id = f"sh{next(_shard_session_counter):06d}"
        self._worker_for(session_id).request("create_session", session_id)
        return session_id

    def respond(self, session_id: str, text: str) -> ShardReply:
        reply = self._worker_for(session_id).request(
            "respond", (session_id, text)
        )
        return ShardReply(
            text=reply["text"],
            executed=reply["executed"],
            intent=reply["intent"],
        )

    def end_session(self, session_id: str) -> None:
        self._worker_for(session_id).request("end_session", session_id)

    def session_ids(self) -> list[str]:
        ids: list[str] = []
        for worker in self._workers:
            ids.extend(worker.request("session_ids", None))
        return ids

    def stats(self) -> ShardStats:
        per_worker = []
        for worker in self._workers:
            raw = worker.request("stats", None)
            per_worker.append(WorkerStats(worker=worker.index, **raw))
        return ShardStats(workers=tuple(per_worker))

    def storage_stats(self) -> dict[int, dict[str, dict[str, Any]]]:
        """Per-worker, per-table sealed/delta/compaction figures."""
        return {
            worker.index: worker.request("storage_stats", None)
            for worker in self._workers
        }

    def compact(self) -> dict[int, int]:
        """Compact every worker's replica; tables resealed per worker."""
        return {
            worker.index: worker.request("compact", None)
            for worker in self._workers
        }

    def replica_status(self) -> dict[int, dict[str, Any]]:
        """Per-worker replication status.

        Each worker owns its database replica *and* (with ``--replicas``)
        its own analytic replicas of it, so lag and routing counters are
        inherently per worker.
        """
        return {
            worker.index: worker.request("replica_status", None)
            for worker in self._workers
        }

    def autotune_status(self) -> dict[int, dict[str, Any]]:
        """Per-worker self-driving policy status.

        Replicas tune independently — each worker's policy follows the
        sessions hashed to it, so the applied index sets can legitimately
        differ across workers under skewed session traffic.
        """
        return {
            worker.index: worker.request("autotune", None)
            for worker in self._workers
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
