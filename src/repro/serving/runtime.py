"""The concurrent multi-session agent runtime.

``AgentRuntime`` owns one immutable artifacts bundle and the database,
and serves any number of named conversations against them::

    runtime = cat.synthesize_runtime(session_ttl=1800.0)
    sid = runtime.create_session()
    reply = runtime.respond(sid, "i want to buy 2 tickets")

Concurrency model (MVCC):

* turns on *different* sessions run in parallel — each turn pins one
  snapshot generation at its start and every read inside (NLU parsing,
  candidate scoring, statistics lookups) resolves against it, so no
  turn ever observes a half-applied change and no turn ever waits for
  a writer;
* turns on the *same* session serialise on the session's turn lock, so
  a client double-submitting cannot corrupt its own dialogue state;
* transactions (the execute step at the end of a task) take only the
  database's narrow commit latch via the stored-procedure registry —
  writers serialise against each other, never against readers; the
  ``commit_waits`` stat counts that writer-writer contention.

Sessions expire after ``session_ttl`` seconds idle and the store evicts
least-recently-used sessions beyond ``max_sessions`` — both are what a
"millions of users" deployment needs to bound memory.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.agent.agent import AgentReply, ConversationalAgent
from repro.agent.artifacts import AgentArtifacts
from repro.agent.session import TranscriptTurn
from repro.db.api import Connection, IndexSuggestion
from repro.db.database import Database
from repro.serving.sessions import Session, SessionStore

__all__ = ["AgentRuntime", "RuntimeStats", "SessionStats"]


@dataclass(frozen=True)
class RuntimeStats:
    """Aggregate counters of one runtime."""

    live_sessions: int
    sessions_created: int
    sessions_expired: int
    sessions_evicted: int
    turns_served: int
    transactions_committed: int
    transactions_aborted: int
    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_bypasses: int
    plan_cache_evictions: int
    # MVCC observability: the committed generation new turns pin, and
    # how often a committing transaction waited behind another writer.
    snapshot_version: int = 0
    commit_waits: int = 0
    # HTAP replication (zeros/None when no replicas are attached): how
    # many analytic statements landed on a replica vs fell through to
    # the primary, and the current frontier in LSNs and seconds.
    replicas_live: int = 0
    replica_routes: int = 0
    primary_fallbacks: int = 0
    replica_lag_lsn: int = 0
    replica_lag_seconds: float | None = None


@dataclass(frozen=True)
class SessionStats:
    """Per-session serving counters (observability; non-touching).

    Sourced from the session's :class:`~repro.db.api.Connection` (the
    runtime charges each turn's plan-cache traffic to it) plus the
    session's turn clock.
    """

    session_id: str
    turns: int
    plan_cache_hits: int
    plan_cache_misses: int
    mean_turn_ms: float
    last_turn_ms: float
    # Statements the client issued directly through the session's
    # connection (the turn queries run through shared internal
    # connections and are attributed via the plan-cache counters).
    executions: int = 0
    statements_prepared: int = 0
    # The MVCC generation the session's latest turn pinned.
    snapshot_version: int = 0
    # Analytic statements this session ran on a replica (via the
    # runtime's execute_analytic surface).
    replica_routes: int = 0

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class AgentRuntime:
    """Thread-safe serving front end for one synthesized agent."""

    def __init__(
        self,
        database: Database,
        artifacts: AgentArtifacts,
        session_ttl: float | None = None,
        max_sessions: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        record_transcripts: bool = True,
    ) -> None:
        self.database = database
        self.artifacts = artifacts
        # One shared engine: it holds no per-conversation state beyond
        # its (unused here) default context, so all sessions reuse it.
        self._agent = ConversationalAgent(database, artifacts)
        # The bundle's prepared-plan cache (the same instance every
        # Query.run on this database reads through).
        self._plan_cache = artifacts.plan_cache
        self.sessions = SessionStore(
            context_factory=artifacts.new_context,
            ttl=session_ttl,
            max_sessions=max_sessions,
            clock=clock,
        )
        self._record_transcripts = record_transcripts
        self._stats_lock = threading.Lock()
        self._turns_served = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_agent(cls, agent: ConversationalAgent, **options) -> "AgentRuntime":
        """Wrap an already-synthesized single-session agent."""
        return cls(agent._database, agent.artifacts, **options)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def create_session(self, session_id: str | None = None) -> str:
        session = self.sessions.create(session_id)
        # Every session holds its own connection: per-session execution
        # stats come free, and a session-scoped index advisor with
        # them.  Created through the locked lazy path so a concurrent
        # respond() on a predictable id never ends up charging a
        # connection this assignment would orphan.
        self._session_connection(session)
        return session.session_id

    def end_session(self, session_id: str) -> None:
        self.sessions.close(session_id)

    def session(self, session_id: str) -> Session:
        """The live session (touches its LRU/TTL clock)."""
        return self.sessions.get(session_id)

    def peek_session(self, session_id: str) -> Session:
        """The live session without touching TTL/LRU (observability)."""
        return self.sessions.peek(session_id)

    def session_ids(self) -> list[str]:
        return self.sessions.ids()

    @property
    def session_count(self) -> int:
        return len(self.sessions)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def respond(self, session_id: str, text: str) -> AgentReply:
        """Process one utterance in the named session."""
        session = self.sessions.get(session_id)
        plan_cache = self._plan_cache
        with session.turn_lock:
            connection = self._session_connection(session)
            # The turn runs on this thread, so the thread-local cache
            # counter delta is exactly this turn's plan-cache traffic —
            # charged to the session's connection.
            hits_before, misses_before = plan_cache.local_counters()
            # The generation this turn's snapshot pin will capture.
            session.last_snapshot_version = self.database.data_version
            started = time.perf_counter()
            reply = self._agent.respond(text, context=session.context)
            elapsed = time.perf_counter() - started
            hits_after, misses_after = plan_cache.local_counters()
            connection.note_plan_cache(
                hits_after - hits_before, misses_after - misses_before
            )
            session.turn_seconds += elapsed
            session.last_turn_seconds = elapsed
            session.turn_count += 1
            if self._record_transcripts:
                session.transcript.append(
                    TranscriptTurn(
                        user=text,
                        agent=reply.text,
                        intent=reply.nlu.intent if reply.nlu else None,
                        executed=reply.executed,
                    )
                )
        with self._stats_lock:
            self._turns_served += 1
        return reply

    def transcript(self, session_id: str) -> list[TranscriptTurn]:
        """Recorded turns of one session (empty when recording is off)."""
        return list(self.sessions.peek(session_id).transcript)

    # ------------------------------------------------------------------
    def stats(self) -> RuntimeStats:
        store = self.sessions
        plan_cache = self._plan_cache
        with self._stats_lock:
            turns = self._turns_served
        manager = self.replica_manager
        replicas_live = 0
        replica_routes = 0
        primary_fallbacks = 0
        replica_lag_lsn = 0
        replica_lag_seconds: float | None = None
        if manager is not None:
            lag = manager.lag()
            replicas_live = lag.replicas_live
            replica_lag_lsn = lag.lsn
            replica_lag_seconds = lag.seconds
            replica_routes = manager.replica_routes
            primary_fallbacks = manager.primary_fallbacks
        return RuntimeStats(
            live_sessions=len(store),
            sessions_created=store.created_count,
            sessions_expired=store.expired_count,
            sessions_evicted=store.evicted_count,
            turns_served=turns,
            transactions_committed=self.database.transactions.committed_count,
            transactions_aborted=self.database.transactions.aborted_count,
            plan_cache_hits=plan_cache.hits,
            plan_cache_misses=plan_cache.misses,
            plan_cache_bypasses=plan_cache.bypasses,
            plan_cache_evictions=plan_cache.evictions,
            snapshot_version=self.database.data_version,
            commit_waits=self.database.commit_latch.waits,
            replicas_live=replicas_live,
            replica_routes=replica_routes,
            primary_fallbacks=primary_fallbacks,
            replica_lag_lsn=replica_lag_lsn,
            replica_lag_seconds=replica_lag_seconds,
        )

    def storage_stats(self) -> dict[str, Any]:
        """Per-table sealed/delta/compaction figures (``:stats``)."""
        return self.database.storage_stats()

    def compact(self) -> int:
        """Fold every table's delta into a fresh sealed segment; returns
        the number of tables resealed (the ``:compact`` command)."""
        return self.database.compact()

    def session_stats(self, session_id: str) -> SessionStats:
        """Per-session counters (peek: does not refresh TTL/LRU)."""
        session = self.sessions.peek(session_id)
        turns = session.turn_count
        connection = self._session_connection(session)
        conn_stats = connection.stats()
        return SessionStats(
            session_id=session_id,
            turns=turns,
            plan_cache_hits=conn_stats.plan_cache_hits,
            plan_cache_misses=conn_stats.plan_cache_misses,
            mean_turn_ms=(session.turn_seconds / turns * 1000.0) if turns
            else 0.0,
            last_turn_ms=session.last_turn_seconds * 1000.0,
            executions=conn_stats.executions,
            statements_prepared=conn_stats.statements_prepared,
            snapshot_version=session.last_snapshot_version,
            replica_routes=session.replica_routes,
        )

    def session_connection(self, session_id: str) -> Connection:
        """The session's database connection (peek: no TTL/LRU touch)."""
        return self._session_connection(self.sessions.peek(session_id))

    def _session_connection(self, session: Session) -> Connection:
        connection = session.connection
        if connection is None:
            # Sessions created directly on the store (tests, custom
            # integrations) get their connection on first use; the
            # double-check under the lock keeps two racing callers from
            # charging stats to an orphaned connection.
            with self._stats_lock:
                connection = session.connection
                if connection is None:
                    connection = self.database.connect(
                        name=session.session_id
                    )
                    session.connection = connection
        return connection

    # ------------------------------------------------------------------
    # HTAP replication
    # ------------------------------------------------------------------
    @property
    def replica_manager(self):
        """The database's attached ReplicaManager (None without one)."""
        return self.database.replica_manager

    def enable_replicas(self, replicas: int = 1, **options):
        """Attach ``replicas`` log-shipped analytic replicas.

        Idempotent once attached: the existing manager is returned.
        ``options`` pass through to
        :class:`~repro.replication.ReplicaManager` (staleness bound,
        ring capacity, batch size).  The serve CLIs call this for
        ``--replicas N``.
        """
        manager = self.database.replica_manager
        if manager is not None:
            return manager
        from repro.replication import ReplicaManager

        return ReplicaManager(self.database, replicas=replicas, **options)

    def replica_status(self) -> dict[str, Any]:
        """Pipe-safe replication status (the ``:replicas`` surface and
        the shard router's ``replica_status`` op)."""
        manager = self.replica_manager
        if manager is None:
            return {"enabled": False}
        status = manager.status()
        status["enabled"] = True
        return status

    def execute_analytic(
        self,
        session_id: str,
        statement,
        max_staleness: float | None = None,
        **binds,
    ):
        """Run one analytic statement for a session, replica-first.

        Routes through the session connection's :meth:`analytic`
        surface — a bounded-staleness replica when one qualifies, the
        primary otherwise — and charges the route to the session's
        counters.  Without replicas this is exactly
        ``session_connection(session_id).execute(...)``.
        """
        session = self.sessions.get(session_id)
        connection = self._session_connection(session)
        target = connection.analytic(max_staleness=max_staleness)
        result = target.execute(statement, **binds)
        # manager.read() may itself have fallen through to the primary;
        # only a genuinely different database counts as a replica route.
        if target.database is not self.database:
            with self._stats_lock:
                session.replica_routes += 1
        return result

    def advisor(self) -> list[IndexSuggestion]:
        """Ranked CREATE INDEX suggestions across the whole workload.

        Reads the database-wide advisor, which every connection
        (session-held and internal) records its SeqScan+Filter misses
        into — the serve REPL's ``:advisor`` surface.  Suggestions an
        existing index already satisfies are elided.
        """
        return self.database.index_advisor.suggestions(self.database)

    def autotune_status(self) -> dict[str, Any]:
        """The self-driving policy's status payload (the ``:autotune``
        surface): enabled flag, applied/retired actions, per-index
        usage counters, budget and respecialisation counters."""
        return self.database.autotuner.status()
