"""Named conversation sessions with TTL expiry and LRU eviction.

The store maps session ids to live :class:`Session` objects, each
owning one :class:`~repro.dialogue.context.ConversationContext` (and
therefore one dialogue state, one buffered-value list and one awareness
model).  Two policies bound memory under heavy traffic:

* **idle TTL** — a session untouched for ``ttl`` seconds is reclaimed
  lazily on the next access (no background reaper thread needed), and
* **LRU capacity** — creating a session beyond ``max_sessions`` evicts
  the least recently used one.

All operations are safe under concurrent callers; the per-session
``turn_lock`` additionally lets the runtime serialise turns *within*
one session while different sessions proceed in parallel.

Neither policy ever reclaims a session whose ``turn_lock`` is held: a
turn in flight would otherwise keep mutating a context the store no
longer owns (and a recreated id would split the dialogue state).  Busy
sessions are skipped and re-aged — they re-enter the TTL window when
their turn finishes.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.dialogue import ConversationContext
from repro.errors import ServingError, SessionExpiredError, UnknownSessionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.api import Connection

__all__ = ["Session", "SessionStore"]

_session_counter = itertools.count(1)


@dataclass
class Session:
    """One live conversation being served by a runtime."""

    session_id: str
    context: ConversationContext
    created_at: float
    last_used_at: float
    turn_count: int = 0
    # The session's database connection (set by the runtime).  Owns the
    # per-session execution counters: the runtime charges each turn's
    # plan-cache traffic to it, and clients may issue their own
    # statements through it.
    connection: "Connection | None" = None
    # Turn wall-clock counters, maintained by AgentRuntime.respond()
    # under the turn lock.
    turn_seconds: float = 0.0
    last_turn_seconds: float = 0.0
    # The MVCC generation the session's latest turn pinned (set by
    # AgentRuntime.respond(); surfaced in the serve REPL's :stats).
    last_snapshot_version: int = 0
    # Analytic statements this session ran on a replica (maintained by
    # AgentRuntime.execute_analytic under the turn-free stats lock).
    replica_routes: int = 0
    # TranscriptTurn entries when the runtime records transcripts; kept
    # on the session so TTL/LRU reclamation frees them too.
    transcript: list = field(default_factory=list)
    turn_lock: threading.Lock = field(default_factory=threading.Lock)

    def idle_for(self, now: float) -> float:
        return now - self.last_used_at


class SessionStore:
    """Thread-safe session registry with TTL and LRU eviction."""

    def __init__(
        self,
        context_factory: Callable[[], ConversationContext],
        ttl: float | None = None,
        max_sessions: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ServingError("ttl must be positive (or None to disable)")
        if max_sessions < 1:
            raise ServingError("max_sessions must be >= 1")
        self._factory = context_factory
        self._ttl = ttl
        self._max_sessions = max_sessions
        self._clock = clock
        self._lock = threading.RLock()
        # Ordered oldest-use first; move_to_end on every touch.
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self.created_count = 0
        self.expired_count = 0
        self.evicted_count = 0

    # ------------------------------------------------------------------
    def create(self, session_id: str | None = None) -> Session:
        """Create (and register) a fresh session.

        Generates an id when none is given; evicts the least recently
        used session if the store is at capacity.
        """
        with self._lock:
            self._reap()
            if session_id is None:
                session_id = self._generate_id()
            elif session_id in self._sessions:
                raise ServingError(f"session {session_id!r} already exists")
            while len(self._sessions) >= self._max_sessions:
                victim_id = None
                for sid, candidate in self._sessions.items():
                    if not candidate.turn_lock.locked():
                        victim_id = sid
                        break
                if victim_id is None:
                    # Every resident session is mid-turn: admit over
                    # capacity rather than tear a live turn down.
                    break
                del self._sessions[victim_id]
                self.evicted_count += 1
            now = self._clock()
            session = Session(
                session_id=session_id,
                context=self._factory(),
                created_at=now,
                last_used_at=now,
            )
            self._sessions[session_id] = session
            self.created_count += 1
            return session

    def get(self, session_id: str) -> Session:
        """Look up a live session and mark it as just used."""
        return self._lookup(session_id, touch=True)

    def peek(self, session_id: str) -> Session:
        """Look up a session *without* refreshing its TTL/LRU position.

        For observability (listing sessions, reading transcripts): a
        monitoring loop must not keep idle sessions alive or scramble
        the eviction order.  Expired sessions are still reclaimed.
        """
        return self._lookup(session_id, touch=False)

    def _lookup(self, session_id: str, touch: bool) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(f"no session {session_id!r}")
            now = self._clock()
            if self._ttl is not None and session.idle_for(now) > self._ttl:
                if session.turn_lock.locked():
                    # A turn is in flight: the session only *looks* idle
                    # because respond() touches the clock before taking
                    # the turn lock.  Re-age instead of expiring.
                    session.last_used_at = now
                else:
                    del self._sessions[session_id]
                    self.expired_count += 1
                    raise SessionExpiredError(
                        f"session {session_id!r} expired after "
                        f"{session.idle_for(now):.0f}s idle"
                    )
            if touch:
                session.last_used_at = now
                self._sessions.move_to_end(session_id)
            return session

    def close(self, session_id: str) -> None:
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise UnknownSessionError(f"no session {session_id!r}")

    def expire(self) -> list[str]:
        """Eagerly drop all idle-expired sessions; returns their ids."""
        with self._lock:
            return self._reap()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def ids(self) -> list[str]:
        """Live session ids, least recently used first."""
        with self._lock:
            self._reap()
            return list(self._sessions)

    # ------------------------------------------------------------------
    def _reap(self) -> list[str]:
        if self._ttl is None:
            return []
        now = self._clock()
        expired = []
        for sid, session in list(self._sessions.items()):
            if session.idle_for(now) <= self._ttl:
                continue
            if session.turn_lock.locked():
                # Mid-turn: re-age so the TTL window restarts when the
                # turn's touch is long past (e.g. a slow transaction).
                session.last_used_at = now
                continue
            expired.append(sid)
        for sid in expired:
            del self._sessions[sid]
            self.expired_count += 1
        return expired

    def _generate_id(self) -> str:
        while True:
            candidate = f"s{next(_session_counter):06d}"
            if candidate not in self._sessions:
                return candidate
