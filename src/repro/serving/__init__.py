"""Concurrent multi-session serving on top of one synthesized agent.

One :class:`~repro.agent.artifacts.AgentArtifacts` bundle is expensive
to synthesize but read-only to serve, so a single bundle (plus the
shared database) can back any number of simultaneous conversations.
This package provides the runtime for that:

* :class:`~repro.serving.sessions.SessionStore` — named sessions with
  idle-TTL expiry and LRU capacity eviction (never of a mid-turn
  session),
* :class:`~repro.serving.runtime.AgentRuntime` — the thread-safe entry
  point: ``runtime.respond(session_id, text)``; every turn pins one
  MVCC snapshot, so read work runs concurrently and transactions take
  only the narrow commit latch,
* :class:`~repro.serving.shard.ShardRouter` — session-affinity sharding
  across N worker processes, each hosting its own runtime over a
  database replica (``python -m repro serve --workers N``).
"""

from repro.serving.runtime import AgentRuntime, RuntimeStats, SessionStats
from repro.serving.sessions import Session, SessionStore
from repro.serving.shard import (
    ShardReply,
    ShardRouter,
    ShardStats,
    WorkerStats,
)

__all__ = [
    "AgentRuntime",
    "RuntimeStats",
    "Session",
    "SessionStats",
    "SessionStore",
    "ShardReply",
    "ShardRouter",
    "ShardStats",
    "WorkerStats",
]
