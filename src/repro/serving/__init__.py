"""Concurrent multi-session serving on top of one synthesized agent.

One :class:`~repro.agent.artifacts.AgentArtifacts` bundle is expensive
to synthesize but read-only to serve, so a single bundle (plus the
shared database) can back any number of simultaneous conversations.
This package provides the runtime for that:

* :class:`~repro.serving.sessions.SessionStore` — named sessions with
  idle-TTL expiry and LRU capacity eviction,
* :class:`~repro.serving.runtime.AgentRuntime` — the thread-safe entry
  point: ``runtime.respond(session_id, text)``; read-only turn work runs
  concurrently, transactions serialise through the database's write
  lock.
"""

from repro.serving.runtime import AgentRuntime, RuntimeStats, SessionStats
from repro.serving.sessions import Session, SessionStore

__all__ = [
    "AgentRuntime",
    "RuntimeStats",
    "Session",
    "SessionStats",
    "SessionStore",
]
