#!/usr/bin/env python3
"""Lint: internal callers must execute through the unified Connection API.

``Query.run(db)`` / ``Query.count(db)`` / ``aggregate_query(...)`` are
deprecated shims kept for external callers and the existing test suite;
code *inside* ``src/repro`` (outside the shim modules themselves) must
go through ``database.connect()`` / ``Connection.prepare`` /
``Connection.execute`` so per-connection stats, the index advisor and
prepared-statement amortisation actually see the traffic.

A second rule guards the MVCC concurrency model: reader/writer
coordination goes through ``Database.read_locked`` (snapshot pins) and
``Database.write_locked`` (the commit latch).  Direct ``RWLock``
construction or acquisition outside ``repro/db/locks.py`` and the
snapshot layer would reintroduce the serialised read path the MVCC
store exists to remove.

Run from the repository root (CI does)::

    python tools/check_execution_api.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# The shim modules themselves (and the API that implements them).
ALLOWED = {
    SRC / "db" / "query.py",
    SRC / "db" / "aggregation.py",
    SRC / "db" / "api.py",
}

# Direct executions of the legacy surface: Query(...).run(...) chains,
# run/count against a database handle, and the aggregate_query shim.
FORBIDDEN = (
    re.compile(r"Query\([^)]*\)(\.\w+\([^)]*\))*\.(run|count)\("),
    re.compile(r"\.(run|count)\(\s*(database|db|self\._database)\b"),
    re.compile(r"\baggregate_query\("),
)

# Files allowed to construct or drive reader/writer locks directly: the
# lock primitives themselves and the snapshot layer built on them.
LOCK_ALLOWED = {
    SRC / "db" / "locks.py",
    SRC / "db" / "snapshots.py",
}

# Direct RWLock usage: construction, method-level acquisition and the
# old suspend/resume dance.  (The bare re-export in repro/db/__init__.py
# carries no call and stays lint-clean.)
LOCK_FORBIDDEN = (
    re.compile(r"\bRWLock\s*\("),
    re.compile(
        r"\.(acquire_read|acquire_write|read_lock|write_lock"
        r"|suspend_reads|resume_reads)\s*\("
    ),
    re.compile(r"\brw_lock\b"),
)

# Files allowed to touch sealed-segment/delta storage internals: the
# bank store itself and the segment support module.  Everyone else
# reads through the public Table surface (scan_slots, slot_buckets,
# grouped_reduce, storage_stats, ...), which keeps the sealed/delta
# split an implementation detail the storage layer can evolve.
# (``database.delta_log`` carries no leading underscore and stays
# lint-clean — it is the public persistence attachment point.)
STORAGE_ALLOWED = {
    SRC / "db" / "table.py",
    SRC / "db" / "segments.py",
}

# ``self.`` receivers stay clean: an object's own ``_sealed_mode``-style
# attribute is its own state, not a reach into a table's banks.
STORAGE_FORBIDDEN = (
    re.compile(r"(?<!self)\._sealed\w*"),
    re.compile(r"(?<!self)\._delta\w*"),
    re.compile(r"(?<!self)\.(_created|_deleted|_max_stamp)\b"),
)

# Files allowed to issue index DDL directly: the storage layer, the
# Database/Connection surfaces that wrap it, snapshot restore, the
# dataset builder (initial physical design) and the self-driving
# policy.  Everything else must leave physical design to the autotuner
# (or route an explicit operator request through the Connection API),
# so the self-driving loop stays the single authority over which
# indexes exist at runtime.
INDEX_DDL_ALLOWED = {
    SRC / "db" / "autotune.py",
    SRC / "db" / "api.py",
    SRC / "db" / "database.py",
    SRC / "db" / "table.py",
    SRC / "db" / "persistence.py",
    SRC / "datasets" / "movies.py",
}

INDEX_DDL_FORBIDDEN = (
    re.compile(
        r"\.(create_index|create_ordered_index"
        r"|drop_index|drop_ordered_index)\s*\("
    ),
)

# Files allowed to tail the replication log or drive replica internals:
# the replication package itself, plus the persistence layer that owns
# ``apply_log_ops`` (snapshot restore replays the same log records).
# Everyone else consumes replicas through the routed surfaces —
# ``Connection.analytic`` / ``Connection.execute`` routing,
# ``ReplicaManager.read``/``wait_for``/``lag``/``status`` — so staleness
# accounting and fallback semantics cannot be bypassed.
REPLICATION_ALLOWED = {
    SRC / "replication" / "log.py",
    SRC / "replication" / "applier.py",
    SRC / "replication" / "manager.py",
    SRC / "db" / "persistence.py",
}

REPLICATION_FORBIDDEN = (
    re.compile(r"\bReplicaApplier\s*\("),
    re.compile(r"\bapply_log_ops\s*\("),
    re.compile(
        r"\.(records_since|wait_for_commit|oldest_stamp_after"
        r"|catch_up|wait_until)\s*\("
    ),
)


def main() -> int:
    violations: list[str] = []
    lock_violations: list[str] = []
    storage_violations: list[str] = []
    index_ddl_violations: list[str] = []
    replication_violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            rel = path.relative_to(SRC.parent.parent)
            if path not in ALLOWED:
                for pattern in FORBIDDEN:
                    if pattern.search(line):
                        violations.append(f"{rel}:{lineno}: {stripped}")
                        break
            if path not in LOCK_ALLOWED:
                for pattern in LOCK_FORBIDDEN:
                    if pattern.search(line):
                        lock_violations.append(
                            f"{rel}:{lineno}: {stripped}"
                        )
                        break
            if path not in STORAGE_ALLOWED:
                for pattern in STORAGE_FORBIDDEN:
                    if pattern.search(line):
                        storage_violations.append(
                            f"{rel}:{lineno}: {stripped}"
                        )
                        break
            if path not in INDEX_DDL_ALLOWED:
                for pattern in INDEX_DDL_FORBIDDEN:
                    if pattern.search(line):
                        index_ddl_violations.append(
                            f"{rel}:{lineno}: {stripped}"
                        )
                        break
            if path not in REPLICATION_ALLOWED:
                for pattern in REPLICATION_FORBIDDEN:
                    if pattern.search(line):
                        replication_violations.append(
                            f"{rel}:{lineno}: {stripped}"
                        )
                        break
    if violations:
        print(
            "direct legacy-surface executions found in src/repro "
            "(use the Connection API from repro.db.api instead):",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
    if lock_violations:
        print(
            "direct RWLock usage found in src/repro (coordinate through "
            "Database.read_locked / Database.write_locked instead):",
            file=sys.stderr,
        )
        for violation in lock_violations:
            print(f"  {violation}", file=sys.stderr)
    if storage_violations:
        print(
            "sealed/delta storage internals touched outside "
            "repro/db/table.py and repro/db/segments.py (use the public "
            "Table surface — scan_slots, slot_buckets, grouped_reduce, "
            "column_counts, storage_stats, compact — instead):",
            file=sys.stderr,
        )
        for violation in storage_violations:
            print(f"  {violation}", file=sys.stderr)
    if index_ddl_violations:
        print(
            "direct index DDL found outside the physical-design layer "
            "(leave index creation/retirement to repro/db/autotune.py, "
            "or route explicit operator DDL through the Database "
            "surface):",
            file=sys.stderr,
        )
        for violation in index_ddl_violations:
            print(f"  {violation}", file=sys.stderr)
    if replication_violations:
        print(
            "replication log/replica internals driven outside "
            "repro/replication (consume replicas through "
            "Connection.analytic / Connection.execute routing or "
            "ReplicaManager.read / wait_for / lag / status instead):",
            file=sys.stderr,
        )
        for violation in replication_violations:
            print(f"  {violation}", file=sys.stderr)
    if (
        violations
        or lock_violations
        or storage_violations
        or index_ddl_violations
        or replication_violations
    ):
        return 1
    print(f"execution-API lint ok ({SRC})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
