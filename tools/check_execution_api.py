#!/usr/bin/env python3
"""Lint: internal callers must execute through the unified Connection API.

``Query.run(db)`` / ``Query.count(db)`` / ``aggregate_query(...)`` are
deprecated shims kept for external callers and the existing test suite;
code *inside* ``src/repro`` (outside the shim modules themselves) must
go through ``database.connect()`` / ``Connection.prepare`` /
``Connection.execute`` so per-connection stats, the index advisor and
prepared-statement amortisation actually see the traffic.

Run from the repository root (CI does)::

    python tools/check_execution_api.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# The shim modules themselves (and the API that implements them).
ALLOWED = {
    SRC / "db" / "query.py",
    SRC / "db" / "aggregation.py",
    SRC / "db" / "api.py",
}

# Direct executions of the legacy surface: Query(...).run(...) chains,
# run/count against a database handle, and the aggregate_query shim.
FORBIDDEN = (
    re.compile(r"Query\([^)]*\)(\.\w+\([^)]*\))*\.(run|count)\("),
    re.compile(r"\.(run|count)\(\s*(database|db|self\._database)\b"),
    re.compile(r"\baggregate_query\("),
)


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            for pattern in FORBIDDEN:
                if pattern.search(line):
                    rel = path.relative_to(SRC.parent.parent)
                    violations.append(f"{rel}:{lineno}: {stripped}")
                    break
    if violations:
        print(
            "direct legacy-surface executions found in src/repro "
            "(use the Connection API from repro.db.api instead):",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"execution-API lint ok ({SRC})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
