"""Tests for metrics, the dialogue evaluation harness and result tables."""

import pytest

from repro.annotation import TaskExtractor
from repro.dataaware import (
    DataAwarePolicy,
    RandomPolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.db import Catalog, StatisticsCatalog
from repro.errors import ReproError
from repro.eval import (
    PRF,
    PolicyExperiment,
    ResultTable,
    intent_accuracy,
    intent_confusion,
    macro_f1,
    run_episode,
    slot_prf,
)
from repro.eval.dialogue_eval import SimulatedUser
from repro.synthesis import SlotSpan


class TestPRF:
    def test_perfect(self):
        prf = PRF(10, 0, 0)
        assert prf.precision == 1.0 and prf.recall == 1.0 and prf.f1 == 1.0

    def test_zero_everything(self):
        prf = PRF(0, 0, 0)
        assert prf.f1 == 0.0

    def test_addition(self):
        total = PRF(1, 2, 3) + PRF(4, 5, 6)
        assert (total.true_positives, total.false_positives,
                total.false_negatives) == (5, 7, 9)

    def test_asymmetric(self):
        prf = PRF(5, 5, 0)
        assert prf.precision == 0.5
        assert prf.recall == 1.0


class TestSlotPRF:
    def gold(self):
        return [
            (SlotSpan("a", "x", 0, 1),),
            (SlotSpan("b", "y", 0, 1), SlotSpan("a", "z", 2, 3)),
        ]

    def test_exact_match(self):
        predicted = [[SlotSpan("a", "x", 0, 1)],
                     [SlotSpan("b", "y", 0, 1), SlotSpan("a", "z", 2, 3)]]
        assert slot_prf(self.gold(), predicted).f1 == 1.0

    def test_wrong_label_penalised(self):
        predicted = [[SlotSpan("b", "x", 0, 1)], []]
        prf = slot_prf(self.gold(), predicted)
        assert prf.true_positives == 0
        assert prf.false_positives == 1
        assert prf.false_negatives == 3

    def test_value_compared_case_insensitively(self):
        predicted = [[SlotSpan("a", "X", 0, 1)], []]
        prf = slot_prf(self.gold(), predicted)
        assert prf.true_positives == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            slot_prf(self.gold(), [[]])


class TestIntentMetrics:
    def test_accuracy(self):
        assert intent_accuracy(["a", "b"], ["a", "c"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            intent_accuracy([], [])

    def test_confusion(self):
        confusion = intent_confusion(["a", "a", "b"], ["a", "b", "b"])
        assert confusion[("a", "a")] == 1
        assert confusion[("a", "b")] == 1
        assert confusion[("b", "b")] == 1

    def test_macro_f1_perfect(self):
        assert macro_f1(["a", "b"], ["a", "b"]) == 1.0

    def test_macro_f1_weights_classes_equally(self):
        gold = ["a"] * 9 + ["b"]
        perfect_majority = ["a"] * 10
        assert macro_f1(gold, perfect_majority) < 0.7


class TestResultTable:
    def test_add_and_format(self):
        table = ResultTable("caption", ["x", "y"])
        table.add_row("a", 1.23456)
        text = table.formatted()
        assert "caption" in text
        assert "1.235" in text

    def test_wrong_arity_rejected(self):
        table = ResultTable("c", ["x"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)


@pytest.fixture()
def policy_env(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    task = next(t for t in tasks if t.name == "ticket_reservation")
    lookup = task.lookup_for("screening_id")
    return database, catalog, annotations, lookup


class TestSimulatedUser:
    def test_value_of_target(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        rid = database.table("screening").row_ids()[0]
        user = SimulatedUser(database, catalog, annotations, lookup, rid)
        from repro.db import ColumnRef

        value = user.value_of(ColumnRef("screening", "date"))
        assert value == database.table("screening").get(rid)["date"]

    def test_awareness_override(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        from repro.db import ColumnRef

        rid = database.table("screening").row_ids()[0]
        attribute = ColumnRef("screening", "date")
        always = SimulatedUser(database, catalog, annotations, lookup, rid,
                               awareness={attribute: 1.0})
        never = SimulatedUser(database, catalog, annotations, lookup, rid,
                              awareness={attribute: 0.0})
        assert all(always.knows(attribute) for __ in range(20))
        assert not any(never.knows(attribute) for __ in range(20))


class TestPolicyExperiment:
    def test_episode_succeeds(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        policy = DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database),
        )
        rid = database.table("screening").row_ids()[0]
        user = SimulatedUser(database, catalog, annotations, lookup, rid,
                             seed=3)
        result = run_episode(database, catalog, lookup, policy, user)
        assert result.success
        assert result.turns >= 1

    def test_experiment_summary(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        experiment = PolicyExperiment(database, catalog, annotations, lookup)
        policy = DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database),
        )
        summary, results = experiment.run(policy, n_episodes=15)
        assert summary.episodes == 15
        assert summary.mean_turns > 0
        assert summary.success_rate > 0.8

    def test_policy_ordering_holds(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        experiment = PolicyExperiment(database, catalog, annotations, lookup)
        data_aware, __ = experiment.run(
            DataAwarePolicy(lookup, UserAwarenessModel(annotations),
                            StatisticsCatalog(database)),
            n_episodes=25,
        )
        random_policy, __ = experiment.run(
            RandomPolicy(lookup, seed=11), n_episodes=25
        )
        assert data_aware.mean_turns <= random_policy.mean_turns
        assert data_aware.speedup_vs(random_policy) >= 0.0

    def test_static_policy_runs(self, policy_env):
        database, catalog, annotations, lookup = policy_env
        experiment = PolicyExperiment(database, catalog, annotations, lookup)
        static = StaticPolicy.train(lookup, database, catalog, annotations)
        summary, __ = experiment.run(static, n_episodes=15)
        assert summary.success_rate > 0.5
