"""Shared fixtures: small databases and a session-scoped trained agent."""

from __future__ import annotations

import pytest

from repro.annotation import TaskExtractor
from repro.datasets import MovieConfig, build_movie_database, movie_templates
from repro.db import Catalog
from repro.synthesis import GenerationConfig, SelfPlayConfig


SMALL_MOVIE_CONFIG = MovieConfig(
    seed=7,
    n_customers=60,
    n_movies=15,
    n_actors=20,
    n_screenings=40,
    n_reservations=25,
    extra_dimensions=1,
)


@pytest.fixture()
def movie_db():
    """A freshly generated small movie database (mutable per test)."""
    database, annotations = build_movie_database(SMALL_MOVIE_CONFIG)
    return database, annotations


@pytest.fixture()
def movie_tasks(movie_db):
    database, annotations = movie_db
    catalog = Catalog(database)
    tasks = TaskExtractor(catalog, annotations).extract_all()
    return database, annotations, catalog, tasks


@pytest.fixture(scope="session")
def trained_agent():
    """A fully synthesized agent (expensive; shared across the session).

    Tests using this fixture must call ``agent.reset()`` and must not
    mutate the underlying database destructively.
    """
    from repro import CAT

    database, annotations = build_movie_database(SMALL_MOVIE_CONFIG)
    cat = CAT(
        database,
        annotations,
        generation=GenerationConfig(
            samples_per_template=4,
            selfplay=SelfPlayConfig(n_flows=150),
        ),
    )
    cat.add_template_catalog(movie_templates())
    agent = cat.synthesize()
    return cat, agent
