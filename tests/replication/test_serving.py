"""Serving-tier replication surfaces: runtime stats, status, shard op."""

import pytest

from repro.db.api import select
from repro.serving import AgentRuntime
from repro.serving.shard import ShardRouter


@pytest.fixture()
def runtime(trained_agent):
    __, agent = trained_agent
    return AgentRuntime.for_agent(agent)


class TestRuntimeReplicas:
    def test_enable_replicas_is_idempotent(self, runtime):
        manager = runtime.enable_replicas(replicas=1)
        try:
            assert runtime.replica_manager is manager
            assert runtime.enable_replicas(replicas=3) is manager
            assert manager.replica_count == 1
        finally:
            manager.stop()
        assert runtime.replica_manager is None

    def test_stats_carry_the_replication_frontier(self, runtime):
        stats = runtime.stats()
        assert stats.replicas_live == 0
        assert stats.replica_lag_seconds is None
        manager = runtime.enable_replicas(replicas=1)
        try:
            assert manager.wait_for(timeout=10.0)
            stats = runtime.stats()
            assert stats.replicas_live == 1
            assert stats.replica_lag_lsn == 0
            assert stats.replica_lag_seconds == 0.0
        finally:
            manager.stop()

    def test_replica_status_toggles_with_the_manager(self, runtime):
        assert runtime.replica_status() == {"enabled": False}
        manager = runtime.enable_replicas(replicas=1)
        try:
            status = runtime.replica_status()
            assert status["enabled"] is True
            assert status["replicas_live"] == 1
        finally:
            manager.stop()

    def test_execute_analytic_charges_the_session(self, runtime):
        manager = runtime.enable_replicas(replicas=1)
        try:
            assert manager.wait_for(timeout=10.0)
            sid = runtime.create_session()
            result = runtime.execute_analytic(
                sid, select("reservation").count()
            )
            assert result.scalar() > 0
            assert runtime.session(sid).replica_routes == 1
            assert runtime.session_stats(sid).replica_routes == 1
            # An unroutable bound falls back without charging.
            runtime.execute_analytic(
                sid, select("reservation").count(), max_staleness=-1.0
            )
            assert runtime.session(sid).replica_routes == 1
        finally:
            manager.stop()


class _FakeReplicaRuntime:
    """The minimal runtime surface the replica_status shard op touches."""

    def __init__(self, tag):
        self.tag = tag

    def replica_status(self):
        return {"enabled": True, "worker": self.tag, "replicas_live": 1}


class TestShardReplicaStatus:
    def test_replica_status_fans_out_per_worker(self):
        tags = iter(range(3))

        def make_fake():
            # In-process workers build in index order, so the running
            # tag matches the worker index.
            return _FakeReplicaRuntime(next(tags))

        with ShardRouter(3, make_fake, inprocess=True) as router:
            status = router.replica_status()
            assert sorted(status) == [0, 1, 2]
            for index, payload in status.items():
                assert payload["worker"] == index
                assert payload["enabled"] is True
