"""Tests for statement classification and connection-level routing."""

from repro.db import sum_
from repro.db.api import aggregate, call, select
from repro.db.query import eq
from repro.replication import ReplicaManager
from repro.replication.routing import is_analytic_statement


class TestClassification:
    def test_aggregates_are_analytic(self):
        statement = aggregate("item", total=sum_("qty"))
        assert is_analytic_statement(statement) is True

    def test_grouped_queries_are_analytic(self):
        statement = aggregate(
            "item", total=sum_("qty")
        ).group_by("bucket")
        assert is_analytic_statement(statement) is True

    def test_whole_table_count_is_analytic(self):
        assert is_analytic_statement(select("item").count()) is True

    def test_filtered_count_stays_on_the_primary(self):
        statement = select("item").where(eq("bucket", "b1")).count()
        assert is_analytic_statement(statement) is False

    def test_point_select_stays_on_the_primary(self):
        statement = select("item").where(eq("item_id", 3))
        assert is_analytic_statement(statement) is False

    def test_procedure_calls_stay_on_the_primary(self):
        assert is_analytic_statement(call("noop")) is False

    def test_unrecognised_statements_stay_on_the_primary(self):
        assert is_analytic_statement(object()) is False


class TestConnectionRouting:
    def test_analytic_oneshot_routes_to_the_replica(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            connection = primary.connect(name="client")
            result = connection.execute(
                aggregate("item", total=sum_("qty"))
            )
            assert result.all()[0]["total"] == sum(range(1, 21))
            assert manager.replica_routes == 1

    def test_point_reads_never_leave_the_primary(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            connection = primary.connect(name="client")
            rows = connection.execute(
                select("item").where(eq("item_id", 3))
            ).all()
            assert [r["item_id"] for r in rows] == [3]
            assert manager.replica_routes == 0

    def test_no_manager_means_no_routing(self, primary):
        connection = primary.connect(name="client")
        result = connection.execute(select("item").count())
        assert result.scalar() == 20

    def test_transactions_pin_reads_to_the_primary(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            connection = primary.connect(name="client")
            with connection.transaction():
                primary.insert(
                    "item", {"item_id": 99, "bucket": "b0", "qty": 99}
                )
                # Read-your-writes: the uncommitted row must be visible,
                # so the count cannot route to a replica.
                count = connection.execute(select("item").count()).scalar()
            assert count == 21
            assert manager.replica_routes == 0
            assert manager.primary_fallbacks == 0

    def test_pinned_snapshots_pin_reads_to_the_primary(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            connection = primary.connect(name="client")
            with connection.reading():
                connection.execute(select("item").count()).scalar()
            assert manager.replica_routes == 0

    def test_analytic_handle_falls_back_when_stale(self, primary):
        with ReplicaManager(primary, replicas=1, auto_start=False) as manager:
            primary.insert("item", {"item_id": 50, "bucket": "b2", "qty": 5})
            connection = primary.connect(name="client")
            target = connection.analytic(max_staleness=0.0)
            assert target.database is primary
            assert manager.primary_fallbacks == 1

    def test_analytic_handle_without_a_manager_is_self(self, primary):
        connection = primary.connect(name="client")
        assert connection.analytic() is connection
