"""Tests for the LSN-addressed replication log (ring + disk tail)."""

import threading

from repro.db import dump_incremental
from repro.db.persistence import DELTA_LOG_NAME
from repro.db.segments import DeltaLog
from repro.replication import ReplicationLog

from .conftest import make_primary


class TestInstall:
    def test_install_is_idempotent(self, primary):
        log = ReplicationLog.install(primary)
        assert ReplicationLog.install(primary) is log
        assert primary.delta_log is log

    def test_install_starts_at_the_current_generation(self, primary):
        before = primary.data_version
        log = ReplicationLog.install(primary)
        assert log.last_lsn == before
        assert log.evicted_lsn == before
        assert log.ring_size == 0

    def test_install_adopts_an_attached_delta_log(self, tmp_path):
        primary = make_primary()
        directory = str(tmp_path / "snap")
        dump_incremental(primary, directory)
        plain = primary.delta_log
        assert type(plain) is DeltaLog
        log = ReplicationLog.install(primary)
        assert primary.delta_log is log
        assert log.path == f"{directory}/{DELTA_LOG_NAME}"
        # Commits keep flowing to the same on-disk tail.
        primary.insert("item", {"item_id": 50, "bucket": "b0", "qty": 1})
        with open(log.path) as handle:
            assert len(handle.readlines()) == 1


class TestRing:
    def test_committed_records_tail_in_lsn_order(self, primary):
        log = ReplicationLog.install(primary)
        start = primary.data_version
        for i in range(60, 65):
            primary.insert(
                "item", {"item_id": i, "bucket": "b0", "qty": i}
            )
        records, floor = log.records_since(start)
        assert [r.lsn for r in records] == sorted(r.lsn for r in records)
        assert len(records) == 5
        assert floor == log.last_lsn
        assert all(r.stamp is not None for r in records)
        assert all(r.ops for r in records)

    def test_limit_cuts_the_batch_and_the_floor(self, primary):
        log = ReplicationLog.install(primary)
        start = primary.data_version
        for i in range(70, 76):
            primary.insert(
                "item", {"item_id": i, "bucket": "b1", "qty": i}
            )
        records, floor = log.records_since(start, limit=2)
        assert len(records) == 2
        assert floor == records[-1].lsn
        assert floor < log.last_lsn

    def test_opless_generations_fast_forward_via_the_floor(self, primary):
        log = ReplicationLog.install(primary)
        applied = primary.data_version
        # Index DDL advances the generation without logging a record.
        primary.create_index("item", "qty")
        records, floor = log.records_since(applied)
        assert records == []
        assert floor == log.last_lsn >= applied

    def test_ring_eviction_without_a_tail_demands_resync(self, primary):
        log = ReplicationLog.install(primary, capacity=3)
        start = primary.data_version
        for i in range(80, 87):
            primary.insert(
                "item", {"item_id": i, "bucket": "b2", "qty": i}
            )
        assert log.ring_size == 3
        assert log.records_since(start) is None
        # Within the ring the read still works.
        records, __ = log.records_since(log.evicted_lsn)
        assert len(records) == 3

    def test_ring_overrun_falls_back_to_the_disk_tail(self, tmp_path):
        primary = make_primary()
        dump_incremental(primary, str(tmp_path / "snap"))
        log = ReplicationLog.install(primary, capacity=3)
        start = primary.data_version
        for i in range(90, 97):
            primary.insert(
                "item", {"item_id": i, "bucket": "b0", "qty": i}
            )
        batch = log.records_since(start)
        assert batch is not None
        records, floor = batch
        assert len(records) == 7  # re-read from disk, none lost
        assert [r.lsn for r in records] == sorted(r.lsn for r in records)
        assert all(r.stamp is None for r in records)  # commit time lost
        assert floor == records[-1].lsn


class TestWaiting:
    def test_wait_for_commit_times_out(self, primary):
        log = ReplicationLog.install(primary)
        assert log.wait_for_commit(log.last_lsn, timeout=0.01) is False

    def test_wait_for_commit_wakes_on_commit(self, primary):
        log = ReplicationLog.install(primary)
        after = log.last_lsn

        def commit():
            primary.insert(
                "item", {"item_id": 99, "bucket": "b1", "qty": 9}
            )

        thread = threading.Timer(0.05, commit)
        thread.start()
        try:
            assert log.wait_for_commit(after, timeout=5.0) is True
        finally:
            thread.join()

    def test_oldest_stamp_after_tracks_the_frontier(self, primary):
        ticks = iter(range(100)).__next__
        log = ReplicationLog.install(primary, clock=lambda: float(ticks()))
        applied = primary.data_version
        primary.insert("item", {"item_id": 41, "bucket": "b0", "qty": 1})
        primary.insert("item", {"item_id": 42, "bucket": "b0", "qty": 2})
        first = log.oldest_stamp_after(applied)
        assert first is not None
        records, __ = log.records_since(applied, limit=1)
        assert log.oldest_stamp_after(records[-1].lsn) > first
        assert log.oldest_stamp_after(log.last_lsn) is None
