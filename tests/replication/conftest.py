"""Shared fixtures for the replication-tier tests."""

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)


def make_primary(rows: int = 20) -> Database:
    """A small sealed single-table primary with an index."""
    schema = DatabaseSchema(
        [
            TableSchema(
                "item",
                [
                    Column("item_id", DataType.INTEGER),
                    Column("bucket", DataType.TEXT),
                    Column("qty", DataType.INTEGER),
                ],
                primary_key="item_id",
            )
        ]
    )
    database = Database(schema)
    database.create_index("item", "bucket")
    for i in range(1, rows + 1):
        database.insert(
            "item", {"item_id": i, "bucket": f"b{i % 3}", "qty": i}
        )
    database.compact()
    return database


@pytest.fixture()
def primary() -> Database:
    return make_primary()
