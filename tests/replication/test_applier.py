"""Tests for the batched replica applier."""

import time

from repro.db.persistence import dumps_database, loads_database
from repro.replication import ReplicaApplier, ReplicationLog


def _bootstrap(primary):
    """A replica image + its starting LSN, like the manager takes it."""
    with primary.write_locked():
        payload = dumps_database(primary, version=4)
        lsn = primary.data_version
    replica = loads_database(payload)
    replica.compact()
    return replica, lsn


def _rows(database):
    return database.rows("item")


class TestCatchUp:
    def test_catch_up_replays_to_byte_equality(self, primary):
        log = ReplicationLog.install(primary)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(replica, log, lsn)
        row_ids = [
            primary.insert(
                "item", {"item_id": i, "bucket": "b0", "qty": i}
            )
            for i in range(200, 205)
        ]
        primary.update("item", row_ids[0], {"qty": 999})
        applied = applier.catch_up()
        assert applied == 6
        assert applier.applied_lsn == log.last_lsn
        assert _rows(replica) == _rows(primary)
        assert applier.records_applied == 6
        assert applier.last_error is None

    def test_batches_group_many_commits_into_one_transaction(self, primary):
        log = ReplicationLog.install(primary)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(replica, log, lsn, batch_size=4)
        before = replica.data_version
        for i in range(210, 220):
            primary.insert(
                "item", {"item_id": i, "bucket": "b1", "qty": i}
            )
        applier.catch_up()
        assert applier.batches_applied == 3  # 4 + 4 + 2
        # One generation bump per batch, not per primary commit.
        assert replica.data_version - before == 3
        assert _rows(replica) == _rows(primary)

    def test_compaction_amortizes_past_the_ops_floor(self, primary):
        log = ReplicationLog.install(primary)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(
            replica, log, lsn, batch_size=4, compact_min_ops=6
        )
        for i in range(230, 234):
            primary.insert(
                "item", {"item_id": i, "bucket": "b2", "qty": i}
            )
        applier.catch_up()
        # 4 ops < floor: the delta is left for the memos to merge.
        assert replica.storage_stats()["item"].delta_rows == 4
        for i in range(234, 238):
            primary.insert(
                "item", {"item_id": i, "bucket": "b2", "qty": i}
            )
        applier.catch_up()
        # 8 accumulated ops >= floor: folded back into sealed shape.
        assert replica.storage_stats()["item"].delta_rows == 0

    def test_ring_overrun_flags_resync_instead_of_diverging(self, primary):
        log = ReplicationLog.install(primary, capacity=2)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(replica, log, lsn)
        for i in range(240, 248):
            primary.insert(
                "item", {"item_id": i, "bucket": "b0", "qty": i}
            )
        before = _rows(replica)
        applier.catch_up()
        assert applier.needs_resync is True
        assert _rows(replica) == before  # nothing partially applied


class TestThreadLifecycle:
    def test_background_tailing_and_wait_until(self, primary):
        log = ReplicationLog.install(primary)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(replica, log, lsn, apply_interval_s=0.0)
        applier.start()
        try:
            assert applier.alive
            applier.start()  # idempotent
            for i in range(250, 254):
                primary.insert(
                    "item", {"item_id": i, "bucket": "b1", "qty": i}
                )
            assert applier.wait_until(log.last_lsn, timeout=10.0)
            assert _rows(replica) == _rows(primary)
        finally:
            applier.stop()
        assert not applier.alive

    def test_wait_until_times_out_when_stopped(self, primary):
        log = ReplicationLog.install(primary)
        replica, lsn = _bootstrap(primary)
        applier = ReplicaApplier(replica, log, lsn)
        primary.insert("item", {"item_id": 260, "bucket": "b2", "qty": 1})
        started = time.monotonic()
        assert applier.wait_until(log.last_lsn, timeout=0.05) is False
        assert time.monotonic() - started < 2.0
