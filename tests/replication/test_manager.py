"""Tests for the replica manager: bootstrap, lag, routing, recovery."""

import pytest

from repro.replication import ReplicaManager


def _rows(database):
    return database.rows("item")


def _insert(primary, start, count):
    for i in range(start, start + count):
        primary.insert("item", {"item_id": i, "bucket": "b0", "qty": i})


class TestBootstrap:
    def test_bootstrap_equals_the_primary_image(self, primary):
        with ReplicaManager(primary, replicas=1, auto_start=False) as manager:
            replica = manager.replica_database(0)
            assert _rows(replica) == _rows(primary)
            assert replica is not primary
            assert replica.autotuner.enabled is False

    def test_manager_attaches_and_stop_detaches(self, primary):
        manager = ReplicaManager(primary, replicas=1, auto_start=False)
        assert primary.replica_manager is manager
        manager.stop()
        assert primary.replica_manager is None

    def test_rejects_zero_replicas(self, primary):
        with pytest.raises(ValueError):
            ReplicaManager(primary, replicas=0)


class TestLagAndWait:
    def test_caught_up_replica_reports_zero_lag(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            lag = manager.lag()
            assert lag.lsn == 0
            assert lag.seconds == 0.0
            assert lag.replicas_live == 1

    def test_wait_for_reaches_a_fresh_commit(self, primary):
        with ReplicaManager(
            primary, replicas=1, apply_interval_s=0.0
        ) as manager:
            _insert(primary, 300, 5)
            target = primary.data_version
            assert manager.wait_for(target, timeout=10.0)
            assert _rows(manager.replica_database(0)) == _rows(primary)

    def test_wait_for_fails_with_no_live_replica(self, primary):
        with ReplicaManager(primary, replicas=1, auto_start=False) as manager:
            _insert(primary, 310, 1)
            assert manager.wait_for(timeout=0.05) is False
            assert manager.lag().replicas_live == 0
            assert manager.lag().seconds is None


class TestRouting:
    def test_fresh_replica_serves_the_read(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            connection = manager.read()
            assert connection.database is manager.replica_database(0)
            assert manager.replica_routes == 1
            assert manager.primary_fallbacks == 0

    def test_stale_replica_falls_through_to_the_primary(self, primary):
        with ReplicaManager(primary, replicas=1, auto_start=False) as manager:
            _insert(primary, 320, 3)
            connection = manager.read(max_staleness=0.0)
            assert connection.database is primary
            assert manager.primary_fallbacks == 1
            assert manager.replica_routes == 0

    def test_round_robin_across_two_replicas(self, primary):
        with ReplicaManager(primary, replicas=2) as manager:
            assert manager.wait_for(timeout=10.0)
            served = {manager.read().database for _ in range(4)}
            assert served == {
                manager.replica_database(0),
                manager.replica_database(1),
            }
            assert manager.replica_routes == 4


class TestRecovery:
    def test_kill_routes_around_and_reattach_resumes(self, primary):
        with ReplicaManager(
            primary, replicas=1, apply_interval_s=0.0
        ) as manager:
            assert manager.wait_for(timeout=10.0)
            manager.kill_replica(0)
            # Primary commits never block on the dead replica.
            _insert(primary, 330, 4)
            assert manager.read(max_staleness=0.0).database is primary
            replica = manager.reattach_replica(0)
            assert replica.resyncs == 0  # ring still holds the history
            assert manager.wait_for(timeout=10.0)
            assert _rows(replica.database) == _rows(primary)

    def test_reattach_resyncs_when_the_history_is_gone(self, primary):
        with ReplicaManager(
            primary, replicas=1, ring_capacity=2, apply_interval_s=0.0
        ) as manager:
            assert manager.wait_for(timeout=10.0)
            manager.kill_replica(0)
            _insert(primary, 340, 8)  # overruns the 2-slot ring; no disk tail
            replica = manager.reattach_replica(0)
            assert replica.resyncs == 1
            assert manager.wait_for(timeout=10.0)
            assert _rows(replica.database) == _rows(primary)


class TestStatus:
    def test_status_payload_shape(self, primary):
        with ReplicaManager(primary, replicas=1) as manager:
            assert manager.wait_for(timeout=10.0)
            manager.read()
            status = manager.status()
            assert status["lag_lsn"] == 0
            assert status["replicas_live"] == 1
            assert status["replica_routes"] == 1
            assert status["primary_fallbacks"] == 0
            assert status["ring"]["capacity"] == 4096
            (replica,) = status["replicas"]
            assert replica["alive"] is True
            assert replica["needs_resync"] is False
            assert replica["last_error"] is None
