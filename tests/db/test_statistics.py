"""Tests for database statistics: entropy, selectivity, caching."""

import math

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    StatisticsCatalog,
    TableSchema,
    entropy,
    gini_impurity,
    normalized_entropy,
)
from repro.db.statistics import compute_column_statistics


class TestEntropy:
    def test_empty_is_zero(self):
        assert entropy([]) == 0.0

    def test_single_value_is_zero(self):
        assert entropy(["a", "a", "a"]) == 0.0

    def test_uniform_two_values(self):
        assert entropy(["a", "b"]) == pytest.approx(1.0)

    def test_uniform_n_values(self):
        assert entropy(list(range(8))) == pytest.approx(3.0)

    def test_skew_reduces_entropy(self):
        balanced = entropy(["a", "b", "a", "b"])
        skewed = entropy(["a", "a", "a", "b"])
        assert skewed < balanced

    def test_nulls_form_their_own_category(self):
        assert entropy(["a", None]) == pytest.approx(1.0)

    def test_normalized_in_unit_interval(self):
        values = ["a", "a", "b", "c", "c", "c"]
        assert 0.0 < normalized_entropy(values) <= 1.0

    def test_normalized_uniform_is_one(self):
        assert normalized_entropy(["a", "b", "c"]) == pytest.approx(1.0)

    def test_gini_bounds(self):
        assert gini_impurity([]) == 0.0
        assert gini_impurity(["a", "a"]) == 0.0
        assert gini_impurity(["a", "b"]) == pytest.approx(0.5)


class TestColumnStatistics:
    def test_basic_counts(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b", None])
        assert stats.row_count == 4
        assert stats.distinct_count == 2
        assert stats.null_count == 1
        assert stats.null_fraction == pytest.approx(0.25)

    def test_most_common(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b"])
        assert stats.most_common[0] == ("a", 2)

    def test_min_max(self):
        stats = compute_column_statistics("t", "c", [3, 1, 2])
        assert stats.min_value == 1 and stats.max_value == 3

    def test_mixed_unorderable_min_max_none(self):
        stats = compute_column_statistics("t", "c", ["a", 1])
        assert stats.min_value is None and stats.max_value is None

    def test_selectivity_known_value(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b", "b"])
        assert stats.selectivity("a") == pytest.approx(0.5)

    def test_selectivity_unknown_value(self):
        values = [f"v{i}" for i in range(100)]
        stats = compute_column_statistics("t", "c", values, most_common_k=4)
        # Unknown values approximated as uniform over the tail.
        assert stats.selectivity("v99") == pytest.approx(1 / 100, rel=0.2)

    def test_average_selectivity_uniform(self):
        values = [f"v{i}" for i in range(10)]
        stats = compute_column_statistics("t", "c", values)
        assert stats.average_selectivity == pytest.approx(0.1)

    def test_key_like_detection(self):
        unique = compute_column_statistics("t", "c", list(range(50)))
        repeated = compute_column_statistics("t", "c", [1] * 50)
        assert unique.is_key_like
        assert not repeated.is_key_like

    def test_entropy_matches_function(self):
        values = ["a", "b", "b"]
        stats = compute_column_statistics("t", "c", values)
        assert stats.entropy == pytest.approx(entropy(values))


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "movie",
                [
                    Column("movie_id", DataType.INTEGER),
                    Column("genre", DataType.TEXT),
                ],
                primary_key="movie_id",
            )
        ]
    )
    database = Database(schema)
    for i, genre in enumerate(["drama", "drama", "comedy", "horror"], start=1):
        database.insert("movie", {"movie_id": i, "genre": genre})
    return database


class TestStatisticsCatalog:
    def test_table_statistics(self, db):
        catalog = StatisticsCatalog(db)
        stats = catalog.table("movie")
        assert stats.row_count == 4
        assert stats.column("genre").distinct_count == 3

    def test_cache_hit_on_second_access(self, db):
        catalog = StatisticsCatalog(db)
        catalog.table("movie")
        catalog.table("movie")
        assert catalog.hits == 1
        assert catalog.misses == 1

    def test_cache_invalidated_by_write(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.column("movie", "genre").distinct_count == 3
        db.insert("movie", {"movie_id": 5, "genre": "western"})
        assert catalog.column("movie", "genre").distinct_count == 4
        assert catalog.misses == 2

    def test_explicit_invalidate(self, db):
        catalog = StatisticsCatalog(db)
        catalog.table("movie")
        catalog.invalidate()
        catalog.table("movie")
        assert catalog.misses == 2
