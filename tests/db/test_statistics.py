"""Tests for database statistics: entropy, selectivity, caching."""

import math

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    StatisticsCatalog,
    TableSchema,
    entropy,
    gini_impurity,
    normalized_entropy,
)
from repro.db.statistics import compute_column_statistics


class TestEntropy:
    def test_empty_is_zero(self):
        assert entropy([]) == 0.0

    def test_single_value_is_zero(self):
        assert entropy(["a", "a", "a"]) == 0.0

    def test_uniform_two_values(self):
        assert entropy(["a", "b"]) == pytest.approx(1.0)

    def test_uniform_n_values(self):
        assert entropy(list(range(8))) == pytest.approx(3.0)

    def test_skew_reduces_entropy(self):
        balanced = entropy(["a", "b", "a", "b"])
        skewed = entropy(["a", "a", "a", "b"])
        assert skewed < balanced

    def test_nulls_form_their_own_category(self):
        assert entropy(["a", None]) == pytest.approx(1.0)

    def test_normalized_in_unit_interval(self):
        values = ["a", "a", "b", "c", "c", "c"]
        assert 0.0 < normalized_entropy(values) <= 1.0

    def test_normalized_uniform_is_one(self):
        assert normalized_entropy(["a", "b", "c"]) == pytest.approx(1.0)

    def test_gini_bounds(self):
        assert gini_impurity([]) == 0.0
        assert gini_impurity(["a", "a"]) == 0.0
        assert gini_impurity(["a", "b"]) == pytest.approx(0.5)


class TestColumnStatistics:
    def test_basic_counts(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b", None])
        assert stats.row_count == 4
        assert stats.distinct_count == 2
        assert stats.null_count == 1
        assert stats.null_fraction == pytest.approx(0.25)

    def test_most_common(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b"])
        assert stats.most_common[0] == ("a", 2)

    def test_min_max(self):
        stats = compute_column_statistics("t", "c", [3, 1, 2])
        assert stats.min_value == 1 and stats.max_value == 3

    def test_mixed_unorderable_min_max_none(self):
        stats = compute_column_statistics("t", "c", ["a", 1])
        assert stats.min_value is None and stats.max_value is None

    def test_selectivity_known_value(self):
        stats = compute_column_statistics("t", "c", ["a", "a", "b", "b"])
        assert stats.selectivity("a") == pytest.approx(0.5)

    def test_selectivity_unknown_value(self):
        values = [f"v{i}" for i in range(100)]
        stats = compute_column_statistics("t", "c", values, most_common_k=4)
        # Unknown values approximated as uniform over the tail.
        assert stats.selectivity("v99") == pytest.approx(1 / 100, rel=0.2)

    def test_average_selectivity_uniform(self):
        values = [f"v{i}" for i in range(10)]
        stats = compute_column_statistics("t", "c", values)
        assert stats.average_selectivity == pytest.approx(0.1)

    def test_key_like_detection(self):
        unique = compute_column_statistics("t", "c", list(range(50)))
        repeated = compute_column_statistics("t", "c", [1] * 50)
        assert unique.is_key_like
        assert not repeated.is_key_like

    def test_entropy_matches_function(self):
        values = ["a", "b", "b"]
        stats = compute_column_statistics("t", "c", values)
        assert stats.entropy == pytest.approx(entropy(values))


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "movie",
                [
                    Column("movie_id", DataType.INTEGER),
                    Column("genre", DataType.TEXT),
                ],
                primary_key="movie_id",
            )
        ]
    )
    database = Database(schema)
    for i, genre in enumerate(["drama", "drama", "comedy", "horror"], start=1):
        database.insert("movie", {"movie_id": i, "genre": genre})
    return database


class TestStatisticsCatalog:
    def test_table_statistics(self, db):
        catalog = StatisticsCatalog(db)
        stats = catalog.table("movie")
        assert stats.row_count == 4
        assert stats.column("genre").distinct_count == 3

    def test_cache_hit_on_second_access(self, db):
        catalog = StatisticsCatalog(db)
        catalog.table("movie")
        catalog.table("movie")
        assert catalog.hits == 1
        assert catalog.misses == 1

    def test_cache_invalidated_by_write(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.column("movie", "genre").distinct_count == 3
        db.insert("movie", {"movie_id": 5, "genre": "western"})
        assert catalog.column("movie", "genre").distinct_count == 4
        assert catalog.misses == 2

    def test_explicit_invalidate(self, db):
        catalog = StatisticsCatalog(db)
        catalog.table("movie")
        catalog.invalidate()
        catalog.table("movie")
        assert catalog.misses == 2


class TestDegenerateSelectivity:
    """Estimator guards: edge inputs must yield sane, clamped estimates."""

    @staticmethod
    def _stats(**overrides):
        from repro.db.statistics import ColumnStatistics

        base = dict(
            table="t", column="c", row_count=100, distinct_count=10,
            null_count=0, entropy=1.0,
            most_common=(("a", 40), ("b", 20)),
        )
        base.update(overrides)
        return ColumnStatistics(**base)

    def test_empty_table_all_estimates_zero(self):
        stats = self._stats(row_count=0, distinct_count=0, most_common=())
        assert stats.selectivity("a") == 0.0
        assert stats.average_selectivity == 0.0
        assert stats.range_selectivity(low=1, high=2) == 0.0
        assert stats.bucket_selectivity("a") == (0.0, None)

    def test_all_null_column_matches_nothing(self):
        stats = self._stats(
            row_count=50, distinct_count=0, null_count=50, most_common=()
        )
        assert stats.selectivity("a") == 0.0
        assert stats.range_selectivity(low=1) == 0.0
        estimate, bucket = stats.bucket_selectivity("a")
        assert estimate == 0.0
        assert bucket is None

    def test_fully_enumerated_mcv_unseen_value_floors(self):
        # distinct_count == len(most_common): statistics claim every
        # value is enumerated, but a newer insert may disagree — the
        # estimate floors at half a row instead of a hard zero.
        stats = self._stats(
            row_count=100, distinct_count=2,
            most_common=(("a", 60), ("b", 40)),
        )
        assert stats.selectivity("zzz") == pytest.approx(0.5 / 100)
        assert stats.selectivity("zzz") > 0.0

    def test_mcv_match_clamped_to_one(self):
        # Externally supplied histograms can overcount; estimates clamp.
        stats = self._stats(
            row_count=10, distinct_count=1, most_common=(("a", 25),)
        )
        assert stats.selectivity("a") == 1.0
        assert stats.bucket_selectivity("a") == (1.0, "a")

    def test_average_selectivity_overcounted_histogram_clamps(self):
        stats = self._stats(
            row_count=10, distinct_count=5,
            most_common=(("a", 30), ("b", 20)),
        )
        assert 0.0 <= stats.average_selectivity <= 1.0

    def test_bucket_selectivity_tail_bucket_is_none(self):
        stats = self._stats(
            row_count=100, distinct_count=10,
            most_common=(("a", 40), ("b", 20)),
        )
        sel_a, bucket_a = stats.bucket_selectivity("a")
        assert (sel_a, bucket_a) == (0.4, "a")
        sel_tail, bucket_tail = stats.bucket_selectivity("q")
        assert bucket_tail is None
        assert 0.0 < sel_tail < 0.4

    def test_range_selectivity_all_null_side(self):
        stats = self._stats(
            row_count=10, distinct_count=0, null_count=10, most_common=(),
            min_value=None, max_value=None,
        )
        assert stats.range_selectivity(low=0, high=1) == 0.0
