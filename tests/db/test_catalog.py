"""Tests for catalog introspection: join graphs and reachability."""

import pytest

from repro.db import Catalog, ColumnRef
from repro.db.types import DataType


@pytest.fixture()
def catalog(movie_db):
    database, __ = movie_db
    return Catalog(database)


class TestBasics:
    def test_tables_listed(self, catalog):
        names = {t.name for t in catalog.tables()}
        assert {"movie", "screening", "customer", "reservation"} <= names

    def test_columns(self, catalog):
        assert any(c.name == "title" for c in catalog.columns("movie"))

    def test_column_type(self, catalog):
        assert catalog.column_type(ColumnRef("movie", "title")) is DataType.TEXT

    def test_primary_key(self, catalog):
        assert catalog.primary_key("movie") == "movie_id"

    def test_foreign_keys(self, catalog):
        fks = catalog.foreign_keys("screening")
        assert any(fk.target_table == "movie" for fk in fks)

    def test_all_column_refs(self, catalog):
        refs = catalog.all_column_refs()
        assert ColumnRef("movie", "title") in refs

    def test_procedures(self, catalog):
        names = {p.name for p in catalog.procedures()}
        assert "ticket_reservation" in names


class TestJunctionDetection:
    def test_movie_actor_is_junction(self, catalog):
        assert catalog.is_junction_table("movie_actor")

    def test_reservation_is_not_junction(self, catalog):
        # reservation carries a payload column (no_tickets).
        assert not catalog.is_junction_table("reservation")

    def test_plain_table_is_not_junction(self, catalog):
        assert not catalog.is_junction_table("movie")


class TestReachability:
    def test_root_at_distance_zero(self, catalog):
        distances = catalog.tables_within("screening", 2)
        assert distances["screening"] == 0

    def test_forward_fk_one_hop(self, catalog):
        distances = catalog.tables_within("screening", 2)
        assert distances["movie"] == 1

    def test_actor_via_junction_two_hops(self, catalog):
        distances = catalog.tables_within("screening", 2)
        assert distances.get("actor") == 2

    def test_reverse_fan_in_excluded(self, catalog):
        # reservation references screening; identifying a screening via
        # its reservations' customers is excluded by design.
        distances = catalog.tables_within("screening", 3)
        assert "customer" not in distances

    def test_reservation_reaches_both_parents(self, catalog):
        distances = catalog.tables_within("reservation", 2)
        assert distances["customer"] == 1
        assert distances["screening"] == 1
        assert distances["movie"] == 2

    def test_hop_bound_respected(self, catalog):
        distances = catalog.tables_within("screening", 1)
        assert "actor" not in distances

    def test_unknown_root(self, catalog):
        assert catalog.tables_within("ghost", 2) == {"ghost": 0}


class TestJoinPaths:
    def test_direct_path(self, catalog):
        assert catalog.join_path("screening", "movie") == ["screening", "movie"]

    def test_junction_path(self, catalog):
        path = catalog.join_path("movie", "actor")
        assert path == ["movie", "movie_actor", "actor"]

    def test_no_path(self, catalog):
        # customer is a root table with no outgoing FKs.
        assert catalog.join_path("customer", "movie") is None

    def test_fk_between(self, catalog):
        link = catalog.fk_between("screening", "movie")
        assert link is not None
        table, fk = link
        assert table == "screening" and fk.target_table == "movie"

    def test_fk_between_unrelated(self, catalog):
        assert catalog.fk_between("movie", "customer") is None
