"""Tests for the self-driving policy: auto-create, retirement, knobs."""

import warnings

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
    eq,
    ge,
    select,
)
from repro.db.api import IndexAdvisor, IndexSuggestion
from repro.db.autotune import Autotuner
from repro.errors import ConstraintViolation


def make_db(n_rows: int = 1500, autotune: bool = True) -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    Column("id", DataType.INTEGER),
                    Column("grp", DataType.INTEGER, nullable=False),
                    Column("val", DataType.FLOAT, nullable=False),
                ],
                primary_key="id",
            )
        ]
    )
    database = Database(schema, autotune=autotune)
    for i in range(1, n_rows + 1):
        database.insert(
            "t", {"id": i, "grp": i % 30, "val": float(i % 100)}
        )
    return database


def loosen(database: Database) -> None:
    """Drop the policy floors to unit-test scale."""
    database.autotuner.configure(
        min_misses=4.0,
        min_rows_scanned=1000.0,
        min_table_rows=100,
    )


def run_scans(database: Database, n: int = 8) -> None:
    """Equality scans on the unindexed grp column + one policy tick per
    scan (the pin drain at the end of each read scope fires on_idle)."""
    connection = database.connect(name="scans")
    for i in range(n):
        with connection.reading():
            connection.execute(select("t").where(eq("grp", i % 30))).all()


class TestAutoCreate:
    def test_creates_index_from_miss_stream(self):
        db = make_db()
        loosen(db)
        assert not db.table("t").has_index("grp")
        run_scans(db)
        assert db.table("t").has_index("grp")
        status = db.autotuner.status()
        assert status["applied"] == 1
        assert any(
            a["action"] == "create" and a["column"] == "grp"
            for a in status["actions"]
        )
        # The applied candidate's miss history is cleared.
        assert not any(
            s.column == "grp" for s in db.index_advisor.suggestions(db)
        )

    def test_default_floors_keep_small_databases_inert(self):
        db = make_db(n_rows=300)  # stock knobs: nothing should trigger
        run_scans(db, n=12)
        assert not db.table("t").has_index("grp")
        assert db.autotuner.status()["applied"] == 0

    def test_disabled_via_constructor(self):
        db = make_db(autotune=False)
        loosen(db)
        run_scans(db)
        assert not db.table("t").has_index("grp")
        assert db.autotuner.status()["enabled"] is False

    def test_memory_budget_blocks_create(self):
        db = make_db()
        loosen(db)
        db.autotuner.memory_budget_rows = 10  # far below 1500 entries
        run_scans(db)
        assert not db.table("t").has_index("grp")

    def test_min_table_rows_blocks_create(self):
        db = make_db(n_rows=1500)
        loosen(db)
        db.autotuner.min_table_rows = 100_000
        run_scans(db)
        assert not db.table("t").has_index("grp")

    def test_write_hot_table_blocks_create(self):
        db = make_db()
        loosen(db)
        # A decayed write window that drowns the scan savings.
        db.autotuner._write_window["t"] = 1e9
        run_scans(db)
        assert not db.table("t").has_index("grp")

    def test_range_misses_create_ordered_index(self):
        db = make_db()
        loosen(db)
        connection = db.connect(name="ranges")
        for i in range(8):
            with connection.reading():
                connection.execute(
                    select("t").where(ge("val", 90.0 + i % 5))
                ).all()
        assert db.table("t").has_ordered_index("val")


class TestRetirement:
    def _tuned(self, half_life=None):
        db = make_db()
        clock = [0.0]
        tuner = Autotuner(db, clock=lambda: clock[0])
        db.autotuner = tuner
        tuner.retire_after_ticks = 2
        tuner.cooldown_ticks = 1000
        if half_life is not None:
            tuner.decay_half_life = half_life
        return db, tuner, clock

    def test_maintenance_dominating_hits_retires(self):
        db, tuner, clock = self._tuned()
        db.create_index("t", "grp")
        tuner.track("t", "grp", "hash")
        # Writes charge maintenance; no probes ever hit the index.
        for i in range(10):
            db.insert(
                "t", {"id": 10_000 + i, "grp": 1, "val": 1.0}
            )
        for _ in range(tuner.retire_after_ticks + 1):
            tuner.on_idle()
        assert not db.table("t").has_index("grp")
        status = tuner.status()
        assert status["retired"] == 1
        assert any(a["action"] == "retire" for a in status["actions"])

    def test_hits_keep_index_alive(self):
        db, tuner, clock = self._tuned()
        db.create_index("t", "grp")
        tuner.track("t", "grp", "hash")
        db.insert("t", {"id": 10_001, "grp": 1, "val": 1.0})
        tuner.record_hits([("t", "grp", "hash")])  # hit_rows ~ 1501
        for _ in range(tuner.retire_after_ticks + 2):
            tuner.on_idle()
        assert db.table("t").has_index("grp")
        assert tuner.status()["retired"] == 0

    def test_decay_erodes_hits_until_retirement(self):
        db, tuner, clock = self._tuned(half_life=1.0)
        db.create_index("t", "grp")
        tuner.track("t", "grp", "hash")
        tuner.record_hits([("t", "grp", "hash")])
        db.insert("t", {"id": 10_002, "grp": 1, "val": 1.0})
        for _ in range(3):
            tuner.on_idle()
        assert db.table("t").has_index("grp")  # hits still dominate
        clock[0] += 60.0  # sixty half-lives: hit mass is gone
        tuner.on_idle()  # applies the decay to the old counters
        db.insert("t", {"id": 10_003, "grp": 1, "val": 1.0})
        for _ in range(3):
            tuner.on_idle()
        assert not db.table("t").has_index("grp")

    def test_cooldown_blocks_recreation(self):
        db, tuner, clock = self._tuned()
        loosen(db)
        db.create_index("t", "grp")
        tuner.track("t", "grp", "hash")
        for i in range(10):
            db.insert("t", {"id": 11_000 + i, "grp": 2, "val": 2.0})
        for _ in range(tuner.retire_after_ticks + 1):
            tuner.on_idle()
        assert not db.table("t").has_index("grp")
        run_scans(db)  # fresh misses, but the candidate is cooling down
        assert not db.table("t").has_index("grp")

    def test_constraint_backed_index_is_untracked_not_dropped(self):
        db, tuner, clock = self._tuned()
        tuner.track("t", "id", "hash")  # the pk-backing index
        for i in range(10):
            db.insert("t", {"id": 12_000 + i, "grp": 3, "val": 3.0})
        for _ in range(tuner.retire_after_ticks + 1):
            tuner.on_idle()
        assert db.table("t").has_index("id")  # refused, still present
        status = tuner.status()
        assert status["retired"] == 0
        assert status["indexes"] == []  # but no longer tracked


class TestDmlCharging:
    def _tracked(self):
        db = make_db()
        db.create_index("t", "grp")
        db.autotuner.track("t", "grp", "hash")
        return db

    def _maintenance(self, db):
        (entry,) = db.autotuner.status()["indexes"]
        return entry["maintenance"]

    def test_insert_charges(self):
        db = self._tracked()
        db.insert("t", {"id": 20_001, "grp": 1, "val": 1.0})
        assert self._maintenance(db) == 1.0

    def test_update_charges_only_touched_columns(self):
        db = self._tracked()
        db.update("t", 1, {"val": 9.0})
        assert self._maintenance(db) == 0.0
        db.update("t", 1, {"grp": 9})
        assert self._maintenance(db) == 1.0

    def test_delete_charges(self):
        db = self._tracked()
        db.delete("t", 1)
        assert self._maintenance(db) == 1.0


class TestApplyIdempotent:
    def test_apply_creates_then_noops_with_warning(self):
        db = make_db()
        suggestion = IndexSuggestion("t", "grp", "hash", 10, 10_000)
        assert suggestion.apply(db) is True
        assert db.table("t").has_index("grp")
        with pytest.warns(UserWarning, match="already exists"):
            assert suggestion.apply(db) is False

    def test_apply_ordered_idempotent(self):
        db = make_db()
        suggestion = IndexSuggestion("t", "val", "ordered", 10, 10_000)
        assert suggestion.apply(db) is True
        with pytest.warns(UserWarning, match="already exists"):
            assert suggestion.apply(db) is False

    def test_apply_safe_under_commit_latch(self):
        # The latch is reentrant: an operator applying inside an open
        # write scope (or the policy during DDL) must not deadlock.
        db = make_db()
        suggestion = IndexSuggestion("t", "grp", "hash", 10, 10_000)
        with db.write_locked():
            assert suggestion.apply(db) is True
        assert db.table("t").has_index("grp")

    def test_existing_constraint_index_noops(self):
        db = make_db()
        suggestion = IndexSuggestion("t", "id", "hash", 10, 10_000)
        with pytest.warns(UserWarning):
            assert suggestion.apply(db) is False


class TestAdvisorDecay:
    def test_half_life_halves_tallies(self):
        clock = [0.0]
        advisor = IndexAdvisor(half_life=10.0, clock=lambda: clock[0])
        for _ in range(8):
            advisor.record("t", "grp", "hash", 100)
        assert advisor.total_misses == 8
        clock[0] += 10.0
        assert advisor.total_misses == 4

    def test_decayed_entries_are_pruned(self):
        clock = [0.0]
        advisor = IndexAdvisor(half_life=1.0, clock=lambda: clock[0])
        advisor.record("t", "grp", "hash", 100)
        clock[0] += 30.0  # far below the half-a-miss floor
        assert advisor.total_misses == 0

    def test_none_half_life_accumulates_forever(self):
        clock = [0.0]
        advisor = IndexAdvisor(clock=lambda: clock[0])
        advisor.record("t", "grp", "hash", 100)
        clock[0] += 1e6
        assert advisor.total_misses == 1

    def test_forget_clears_candidate(self):
        advisor = IndexAdvisor()
        advisor.record("t", "grp", "hash", 100)
        advisor.forget("t", "grp", "hash")
        assert advisor.total_misses == 0


class TestDropIndexDdl:
    def test_drop_index_round_trip(self):
        db = make_db()
        db.create_index("t", "grp")
        assert db.table("t").has_index("grp")
        db.drop_index("t", "grp")
        assert not db.table("t").has_index("grp")

    def test_drop_missing_raises(self):
        db = make_db()
        with pytest.raises(KeyError):
            db.drop_index("t", "grp")
        with pytest.raises(KeyError):
            db.drop_ordered_index("t", "val")

    def test_drop_constraint_backed_refused(self):
        db = make_db()
        with pytest.raises(ConstraintViolation):
            db.drop_index("t", "id")

    def test_drop_bumps_plan_stamp(self):
        db = make_db()
        db.create_index("t", "grp")
        before = db.plan_stamp
        db.drop_index("t", "grp")
        assert db.plan_stamp != before

    def test_drop_ordered_round_trip(self):
        db = make_db()
        db.create_ordered_index("t", "val")
        assert db.table("t").has_ordered_index("val")
        db.drop_ordered_index("t", "val")
        assert not db.table("t").has_ordered_index("val")


class TestSurface:
    def test_configure_unknown_knob_raises(self):
        db = make_db()
        with pytest.raises(AttributeError, match="unknown autotune knob"):
            db.autotuner.configure(warp_factor=9)

    def test_configure_forwards_respec_knobs(self):
        db = make_db()
        db.autotuner.configure(divergence_ratio=5.0, fork_threshold=7)
        assert db.plan_cache.divergence_ratio == 5.0
        assert db.plan_cache.fork_threshold == 7

    def test_connection_autotune_surface(self):
        db = make_db()
        payload = db.connect(name="c").autotune()
        assert payload["enabled"] is True
        assert "budget" in payload and "knobs" in payload
        assert payload["respec"] is not None or db._plan_cache is None
