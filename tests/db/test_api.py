"""The unified execution API: Connection / PreparedStatement / Result."""

from __future__ import annotations

import random
import threading

import pytest

from repro.db import Param, Query, api, select
from repro.db.aggregation import (
    Aggregate,
    aggregate_query,
    count,
    max_,
    min_,
    sum_,
)
from repro.db.engine import CountOnly, Filter, IndexEq, SeqScan
from repro.db.procedures import ProcedureResult
from repro.db.query import and_, contains, eq, ge, gt, le, or_
from repro.errors import ProcedureError, QueryError


@pytest.fixture()
def database(movie_db):
    db, __ = movie_db
    return db


@pytest.fixture()
def conn(database):
    return database.connect()


# ---------------------------------------------------------------------------
# Connection basics
# ---------------------------------------------------------------------------

class TestConnection:
    def test_connect_returns_fresh_connections(self, database):
        a = database.connect()
        b = database.connect()
        assert a is not b
        assert a.name != b.name
        assert a.database is database

    def test_default_connection_is_shared(self, database):
        assert database.default_connection is database.default_connection

    def test_named_connection(self, database):
        assert database.connect(name="svc").name == "svc"

    def test_stats_count_prepares_and_executions(self, conn):
        stmt = conn.prepare(select("movie").where(eq("year", Param("y"))))
        stmt.execute(y=1999).all()
        stmt.execute(y=2001).all()
        stats = conn.stats()
        assert stats.statements_prepared == 1
        assert stats.executions == 2

    def test_rows_returned_counted(self, conn, database):
        n = len(database.table("movie"))
        rows = conn.execute(select("movie")).all()
        assert len(rows) == n
        assert conn.stats().rows_returned == n

    def test_prepare_cached_pools_by_key(self, conn):
        a = conn.prepare_cached("k", lambda: select("movie"))
        b = conn.prepare_cached("k", lambda: select("movie"))
        assert a is b
        assert conn.stats().statements_prepared == 1

    def test_reading_scope_allows_queries(self, conn):
        with conn.reading():
            assert conn.execute(select("movie").count()).scalar() > 0

    def test_prepare_rejects_unknown_statement_types(self, conn):
        with pytest.raises(QueryError):
            conn.prepare("SELECT 1")  # type: ignore[arg-type]


class TestTransactionScope:
    def test_commit_on_success(self, conn, database):
        before = database.count("movie")
        with conn.transaction():
            database.insert("movie", {
                "movie_id": 9001, "title": "Committed", "genre": "drama",
                "year": 2024, "duration_minutes": 100, "language_id": 1,
            })
        assert database.count("movie") == before + 1
        assert conn.stats().transactions_committed == 1

    def test_rollback_on_exception(self, conn, database):
        before = database.count("movie")
        with pytest.raises(RuntimeError):
            with conn.transaction():
                database.insert("movie", {
                    "movie_id": 9002, "title": "Undone", "genre": "drama",
                    "year": 2024, "duration_minutes": 90, "language_id": 1,
                })
                raise RuntimeError("abort")
        assert database.count("movie") == before
        stats = conn.stats()
        assert stats.transactions_aborted == 1
        assert stats.transactions_committed == 0

    def test_commit_bumps_data_version(self, conn, database):
        version = database.data_version
        with conn.transaction():
            database.insert("movie", {
                "movie_id": 9003, "title": "Versioned", "genre": "drama",
                "year": 2024, "duration_minutes": 95, "language_id": 1,
            })
        assert database.data_version > version


# ---------------------------------------------------------------------------
# PreparedStatement: select/count parity with the legacy surface
# ---------------------------------------------------------------------------

class TestPreparedSelect:
    def test_execute_matches_query_run(self, conn, database):
        stmt = conn.prepare(
            select("screening").where(eq("movie_id", Param("m")))
        )
        for movie_id in (1, 2, 3, 99):
            expected = Query("screening").where(
                eq("movie_id", movie_id)
            ).run(database)
            assert stmt.execute(m=movie_id).all() == expected

    def test_literal_constants_need_no_binds(self, conn, database):
        stmt = conn.prepare(select("movie").where(ge("year", 2000)))
        assert stmt.param_names == frozenset()
        assert stmt.execute().all() == \
            Query("movie").where(ge("year", 2000)).run(database)

    def test_order_limit_projection(self, conn, database):
        stmt = conn.prepare(
            select("movie").where(ge("year", Param("y")))
            .order_by("year", descending=True).limit(5).project("title", "year")
        )
        expected = (
            Query("movie").where(ge("year", 1990))
            .order_by("year", descending=True).limit(5).select("title", "year")
            .run(database)
        )
        assert stmt.execute(y=1990).all() == expected

    def test_count_statement(self, conn, database):
        stmt = conn.prepare(
            select("screening").where(eq("movie_id", Param("m"))).count()
        )
        for movie_id in (1, 5):
            assert stmt.execute(m=movie_id).scalar() == \
                Query("screening").where(eq("movie_id", movie_id)).count(database)

    def test_plain_query_is_preparable(self, conn, database):
        stmt = conn.prepare(Query("movie").where(ge("year", 2000)))
        assert stmt.execute().all() == \
            Query("movie").where(ge("year", 2000)).run(database)

    def test_missing_binding_rejected(self, conn):
        stmt = conn.prepare(select("movie").where(eq("year", Param("y"))))
        with pytest.raises(QueryError, match="missing parameter"):
            stmt.execute()

    def test_unknown_binding_rejected(self, conn):
        stmt = conn.prepare(select("movie").where(eq("year", Param("y"))))
        with pytest.raises(QueryError, match="unknown parameter"):
            stmt.execute(y=2000, z=1)

    def test_same_param_twice_binds_both_slots(self, conn, database):
        stmt = conn.prepare(
            select("screening").where(
                or_(eq("movie_id", Param("x")), eq("room", Param("x")))
            )
        )
        expected = Query("screening").where(
            or_(eq("movie_id", 2), eq("room", 2))
        ).run(database)
        assert stmt.execute(x=2).all() == expected

    def test_param_name_must_be_identifier(self):
        with pytest.raises(QueryError):
            Param("not an identifier")

    def test_unbindable_constant_falls_back_to_direct_plan(
        self, conn, database
    ):
        stmt = conn.prepare(
            select("screening").where(eq("movie_id", Param("m")))
        )
        stmt.execute(m=3).all()  # compile the template with a good value
        expected = Query("screening").where(
            eq("movie_id", "not-an-int")
        ).run(database)
        assert stmt.execute(m="not-an-int").all() == expected

    def test_value_dependent_shape_plans_per_execution(self, conn, database):
        # Two lower bounds on one column: the plan cache refuses the
        # shape, so the statement plans each execution directly.
        stmt = conn.prepare(
            select("screening").where(
                and_(gt("price", Param("a")), gt("price", Param("b")))
            )
        )
        expected = Query("screening").where(
            and_(gt("price", 10.0), gt("price", 12.0))
        ).run(database)
        assert stmt.execute(a=10.0, b=12.0).all() == expected
        # And with the fold winner swapped.
        expected = Query("screening").where(
            and_(gt("price", 14.0), gt("price", 9.0))
        ).run(database)
        assert stmt.execute(a=14.0, b=9.0).all() == expected

    def test_in_list_param_binds_whole_tuple(self, conn, database):
        from repro.db.query import in_

        stmt = conn.prepare(
            select("screening").where(in_("movie_id", Param("ids")))
        )
        expected = Query("screening").where(in_("movie_id", (1, 3))).run(database)
        assert stmt.execute(ids=(1, 3)).all() == expected
        # A second shape through the same template, different list size.
        expected = Query("screening").where(in_("movie_id", (2,))).run(database)
        assert stmt.execute(ids=(2,)).all() == expected

    def test_data_changes_invalidate_template(self, conn, database):
        stmt = conn.prepare(
            select("movie").where(eq("year", Param("y")))
        )
        before = len(stmt.execute(y=2024).all())
        database.insert("movie", {
            "movie_id": 9010, "title": "Fresh", "genre": "drama",
            "year": 2024, "duration_minutes": 100, "language_id": 1,
        })
        assert len(stmt.execute(y=2024).all()) == before + 1

    def test_index_ddl_adopted_by_prepared_statement(self, conn, database):
        stmt = conn.prepare(
            select("movie").where(eq("title", Param("t")))
        )
        title = database.rows("movie")[0]["title"]
        result = stmt.execute(t=title)
        assert isinstance(result.plan, Filter)
        assert isinstance(result.plan.child, SeqScan)
        expected = result.all()
        database.create_index("movie", "title")
        result = stmt.execute(t=title)
        assert isinstance(result.plan.child, IndexEq)
        assert result.all() == expected

    def test_explain_renders_bound_plan(self, conn):
        stmt = conn.prepare(
            select("screening").where(eq("screening_id", Param("s")))
        )
        text = stmt.explain(s=7)
        assert "IndexEq on screening using screening_id" in text

    def test_statement_run_honours_count_and_aggregates(self, database):
        # Query.run would compile only the row query; the statement
        # overrides route through the prepared path instead.
        assert select("movie").count().run(database) == \
            [{"count": database.count("movie")}]
        expected = aggregate_query(
            database, Query("reservation"), {"booked": sum_("no_tickets")},
            group_by=["screening_id"],
        )
        assert api.aggregate("reservation", booked=sum_("no_tickets")) \
            .group_by("screening_id").run(database) == expected
        assert "CountOnly" in select("movie").count().explain(database)
        assert "IndexGroupedAggScan" in api.aggregate(
            "reservation", booked=sum_("no_tickets")
        ).group_by("screening_id").explain(database)

    def test_statement_run_with_unbound_params_rejected(self, database):
        with pytest.raises(QueryError, match="missing parameter"):
            select("movie").where(eq("year", Param("y"))).run(database)


# ---------------------------------------------------------------------------
# Aggregate statements
# ---------------------------------------------------------------------------

class TestPreparedAggregates:
    def test_grouped_aggregate_matches_aggregate_query(self, conn, database):
        stmt = conn.prepare(
            api.aggregate("reservation", booked=sum_("no_tickets"), n=count())
            .group_by("screening_id")
        )
        expected = aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets"), "n": count()},
            group_by=["screening_id"],
        )
        assert stmt.execute().all() == expected

    def test_parameterised_aggregate(self, conn, database):
        stmt = conn.prepare(
            api.aggregate("reservation", booked=sum_("no_tickets"))
            .where(eq("screening_id", Param("s")))
        )
        for screening_id in (1, 2, 3):
            expected = aggregate_query(
                database,
                Query("reservation").where(eq("screening_id", screening_id)),
                {"booked": sum_("no_tickets")},
            )
            assert stmt.execute(s=screening_id).all() == expected

    def test_having_with_param(self, conn, database):
        stmt = conn.prepare(
            api.aggregate("reservation", booked=sum_("no_tickets"))
            .group_by("screening_id")
            .having(ge("booked", Param("min_booked")))
        )
        expected = aggregate_query(
            database,
            Query("reservation"),
            {"booked": sum_("no_tickets")},
            group_by=["screening_id"],
            having=ge("booked", 3),
        )
        assert stmt.execute(min_booked=3).all() == expected

    def test_bare_count_short_circuits_to_count_plan(self, conn, database):
        stmt = conn.prepare(api.aggregate("screening", n=count()))
        result = stmt.execute()
        assert isinstance(result.plan, CountOnly)
        assert result.all() == [{"n": database.count("screening")}]

    def test_custom_reducer_falls_back(self, conn, database):
        spread = Aggregate(
            "spread", "price", lambda vs: max(vs) - min(vs) if vs else None
        )
        stmt = conn.prepare(
            api.aggregate("screening", spread=spread).group_by("room")
        )
        expected = aggregate_query(
            database, Query("screening"), {"spread": spread},
            group_by=["room"],
        )
        assert stmt.execute().all() == expected

    def test_custom_reducer_having_with_param(self, conn, database):
        spread = Aggregate(
            "spread", "price", lambda vs: max(vs) - min(vs) if vs else None
        )
        stmt = conn.prepare(
            api.aggregate("screening", spread=spread).group_by("room")
            .having(ge("spread", Param("s")))
        )
        expected = aggregate_query(
            database, Query("screening"), {"spread": spread},
            group_by=["room"], having=ge("spread", 1.0),
        )
        assert stmt.execute(s=1.0).all() == expected

    def test_empty_aggregates_rejected(self, conn):
        with pytest.raises(QueryError):
            conn.prepare(api.aggregate("screening"))

    def test_group_by_without_aggregates_rejected(self, conn):
        with pytest.raises(QueryError):
            conn.prepare(select("screening").group_by("room"))

    def test_count_combined_with_aggregates_rejected(self, conn):
        with pytest.raises(QueryError):
            conn.prepare(api.aggregate("screening", n=count()).count())

    def test_min_max_uses_index_agg_scan(self, conn):
        stmt = conn.prepare(
            api.aggregate("screening", lo=min_("price"), hi=max_("price"))
        )
        assert "IndexAggScan" in stmt.explain()


# ---------------------------------------------------------------------------
# Procedure call statements + ProcedureResult protocol
# ---------------------------------------------------------------------------

class TestCallStatements:
    def test_call_executes_procedure(self, conn, database):
        customer = database.rows("customer")[0]
        screening = database.rows("screening")[0]
        before = database.count("reservation")
        result = conn.call(
            "ticket_reservation",
            customer_id=customer["customer_id"],
            screening_id=screening["screening_id"],
            ticket_amount=1,
        )
        assert database.count("reservation") == before + 1
        assert result.value["no_tickets"] == 1
        assert result.plan is None
        with pytest.raises(QueryError):
            result.explain()
        assert conn.stats().procedure_calls == 1

    def test_prepared_call_binds_params(self, conn, database):
        customer = database.rows("customer")[0]
        screening = database.rows("screening")[1]
        stmt = conn.prepare(
            api.call(
                "ticket_reservation",
                customer_id=Param("c"),
                screening_id=Param("s"),
                ticket_amount=2,
            )
        )
        assert stmt.param_names == {"c", "s"}
        result = stmt.execute(
            c=customer["customer_id"], s=screening["screening_id"]
        )
        assert result.value["no_tickets"] == 2

    def test_unknown_procedure_rejected_at_prepare(self, conn):
        with pytest.raises(ProcedureError):
            conn.prepare(api.call("no_such_procedure"))

    def test_unknown_argument_rejected_at_prepare(self, conn):
        with pytest.raises(ProcedureError):
            conn.prepare(api.call("ticket_reservation", bogus=1))

    def test_procedure_result_rows_interchangeable(self, conn, database):
        movie = database.rows("movie")[0]
        result = conn.call("list_screenings", movie_id=movie["movie_id"])
        rows = result.all()
        assert rows == result.procedure_result.rows()
        assert rows == Query("screening").where(
            eq("movie_id", movie["movie_id"])
        ).run(database)


class TestProcedureResultProtocol:
    def test_none_value_yields_no_rows(self):
        result = ProcedureResult("p", {}, None)
        assert list(result) == []
        assert result.all() == []
        assert result.scalar() is None
        assert len(result) == 0
        # An outcome object stays truthy even when it produced no rows
        # (callers gate success handling on `if outcome.result:`).
        assert bool(result)

    def test_mapping_value_is_one_row(self):
        result = ProcedureResult("p", {}, {"reservation_id": 7, "n": 2})
        assert result.all() == [{"reservation_id": 7, "n": 2}]
        assert result.scalar() == 7
        assert len(result) == 1

    def test_row_sequence_value_iterates_rows(self):
        rows = [{"a": 1}, {"a": 2}]
        result = ProcedureResult("p", {}, rows)
        assert list(result) == rows
        assert result.all() is not rows  # fresh copies

    def test_scalar_value_wraps_as_row(self):
        result = ProcedureResult("p", {}, 42)
        assert result.all() == [{"value": 42}]
        assert result.scalar() == 42


# ---------------------------------------------------------------------------
# Result cursor semantics
# ---------------------------------------------------------------------------

class TestResultCursor:
    def test_iteration_streams_all_rows(self, conn, database):
        rows = list(conn.execute(select("screening")))
        assert rows == Query("screening").run(database)

    def test_fetchmany_pages_through(self, conn, database):
        expected = Query("screening").run(database)
        result = conn.execute(select("screening"))
        pages = []
        while True:
            page = result.fetchmany(7)
            if not page:
                break
            assert len(page) <= 7
            pages.extend(page)
        assert pages == expected

    def test_all_after_partial_fetch_returns_remainder(self, conn, database):
        expected = Query("screening").run(database)
        result = conn.execute(select("screening"))
        head = result.fetchmany(3)
        assert head == expected[:3]
        assert result.all() == expected[3:]
        assert result.all() == []

    def test_fetchone_then_exhaustion(self, conn):
        result = conn.execute(select("movie").limit(1))
        assert result.fetchone() is not None
        assert result.fetchone() is None

    def test_scalar_on_empty_result_is_none(self, conn):
        assert conn.execute(
            select("movie").where(eq("movie_id", -1))
        ).scalar() is None

    def test_negative_fetchmany_rejected(self, conn):
        with pytest.raises(QueryError):
            conn.execute(select("movie")).fetchmany(-1)

    def test_plan_and_explain_exposed(self, conn):
        result = conn.execute(
            select("screening").where(eq("screening_id", 3))
        )
        assert result.plan is not None
        assert "screening" in result.explain()

    def test_streaming_defers_materialisation(self, conn, database):
        # Only the consumed prefix is charged to the connection.
        result = conn.execute(select("screening"))
        result.fetchmany(2)
        assert conn.stats().rows_returned == 2

    def test_row_ids_for_filter_plans(self, conn, database):
        result = conn.execute(
            select("screening").where(eq("movie_id", 1))
        )
        from repro.db.engine import execute_row_ids

        assert result.row_ids() == execute_row_ids(database, result.plan)

    def test_error_surfaces_on_consumption(self, conn):
        result = conn.execute(select("movie").where(eq("nope", 1)))
        with pytest.raises(QueryError):
            result.all()


# ---------------------------------------------------------------------------
# Index advisor
# ---------------------------------------------------------------------------

class TestIndexAdvisor:
    def test_equality_miss_suggests_hash_index(self, conn, database):
        assert not database.table("movie").has_index("title")
        conn.execute(select("movie").where(eq("title", "Heat"))).all()
        suggestions = conn.advisor()
        assert any(
            s.table == "movie" and s.column == "title" and s.kind == "hash"
            for s in suggestions
        )
        assert "CREATE INDEX ON movie (title)" in suggestions[0].statement

    def test_range_miss_suggests_ordered_index(self, conn, database):
        assert not database.table("movie").has_ordered_index("duration_minutes")
        conn.execute(
            select("movie").where(ge("duration_minutes", 100))
        ).all()
        assert any(
            s.column == "duration_minutes" and s.kind == "ordered"
            for s in conn.advisor()
        )

    def test_indexed_probe_records_no_miss(self, conn, database):
        conn.execute(select("screening").where(eq("movie_id", 1))).all()
        assert conn.advisor() == []

    def test_contains_predicate_not_advisable(self, conn):
        conn.execute(select("movie").where(contains("title", "the"))).all()
        assert conn.advisor() == []

    def test_hash_join_on_unindexed_key_suggests_index(self, conn, database):
        assert not database.table("movie").has_index("title")
        conn.execute(select("actor").join("name", "movie", "title")).all()
        title = next(s for s in conn.advisor() if s.column == "title")
        assert title.table == "movie"
        assert title.kind == "hash"
        assert title.rows_scanned == len(database.table("movie"))

    def test_indexed_join_key_records_no_miss(self, conn):
        conn.execute(
            select("screening").join("movie_id", "movie", "movie_id")
        ).all()
        assert conn.advisor() == []

    def test_misses_accumulate_and_rank(self, conn, database):
        for __ in range(3):
            conn.execute(select("movie").where(eq("title", "Heat"))).all()
        conn.execute(
            select("movie").where(ge("duration_minutes", 100))
        ).all()
        suggestions = conn.advisor()
        title = next(s for s in suggestions if s.column == "title")
        assert title.misses == 3
        assert title.rows_scanned == 3 * len(database.table("movie"))
        assert suggestions[0] is title  # most rows walked first

    def test_prepared_statements_record_misses_too(self, conn, database):
        stmt = conn.prepare(select("movie").where(eq("title", Param("t"))))
        stmt.execute(t="Heat").all()
        stmt.execute(t="Alien").all()
        title = next(s for s in conn.advisor() if s.column == "title")
        assert title.misses == 2

    def test_database_advisor_aggregates_connections(self, database):
        a = database.connect()
        b = database.connect()
        a.execute(select("movie").where(eq("title", "Heat"))).all()
        b.execute(select("movie").where(eq("title", "Alien"))).all()
        title = next(
            s for s in database.index_advisor.suggestions()
            if s.column == "title"
        )
        assert title.misses == 2

    def test_suggestion_apply_creates_index_and_clears_misses(
        self, conn, database
    ):
        conn.execute(select("movie").where(eq("title", "Heat"))).all()
        suggestion = conn.advisor()[0]
        suggestion.apply(database)
        assert database.table("movie").has_index("title")
        # A satisfied suggestion disappears from the advisor output...
        assert not any(s.column == "title" for s in conn.advisor())
        assert not any(
            s.column == "title"
            for s in database.index_advisor.suggestions(database)
        )
        # ...and the new index is adopted: later executions probe,
        # recording no new miss.
        before = conn.stats().index_misses
        conn.execute(select("movie").where(eq("title", "Heat"))).all()
        assert conn.stats().index_misses == before


# ---------------------------------------------------------------------------
# Concurrency: one PreparedStatement shared by 16 threads
# ---------------------------------------------------------------------------

class TestConcurrentExecution:
    def test_16_threads_share_one_prepared_statement(self, conn, database):
        stmt = conn.prepare(
            select("screening").where(eq("movie_id", Param("m")))
        )
        movie_ids = sorted(
            {row["movie_id"] for row in database.rows("screening")}
        )[:16] or [1]
        expected = {
            m: Query("screening").where(eq("movie_id", m)).run(database)
            for m in movie_ids
        }
        errors: list[BaseException] = []
        mismatches: list[tuple] = []
        barrier = threading.Barrier(16)

        def worker(thread_index: int) -> None:
            m = movie_ids[thread_index % len(movie_ids)]
            try:
                barrier.wait(timeout=10)
                for __ in range(40):
                    rows = stmt.execute(m=m).all()
                    if rows != expected[m]:
                        mismatches.append((m, rows))
                        return
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert not mismatches  # bindings never bleed between threads
        assert conn.stats().executions == 16 * 40


# ---------------------------------------------------------------------------
# Randomised differential: PreparedStatement.execute ≡ Query.run
# ---------------------------------------------------------------------------

class TestRandomisedParity:
    def test_500_query_differential(self, conn, database):
        rng = random.Random(37)
        tables = {
            "screening": (
                ["movie_id", "price", "capacity"], ["room", "date"]
            ),
            "movie": (["year", "duration_minutes"], ["genre", "title"]),
            "reservation": (["screening_id", "no_tickets"], []),
        }
        ops = [eq, ge, le, gt]
        for case in range(500):
            table = rng.choice(list(tables))
            numeric, __ = tables[table]
            statement = select(table)
            query = Query(table)
            binds = {}
            for i in range(rng.randrange(0, 3)):
                column = rng.choice(numeric)
                op = rng.choice(ops)
                value = rng.randrange(0, 2000)
                name = f"p{i}"
                statement.where(op(column, Param(name)))
                query.where(op(column, value))
                binds[name] = value
            if rng.random() < 0.4:
                column = rng.choice(numeric)
                descending = rng.random() < 0.5
                statement.order_by(column, descending=descending)
                query.order_by(column, descending=descending)
            if rng.random() < 0.4:
                n = rng.randrange(0, 10)
                statement.limit(n)
                query.limit(n)
            counting = rng.random() < 0.25
            if counting:
                statement.count()
                assert conn.prepare(statement).execute(**binds).scalar() \
                    == query.count(database), f"case {case}"
            else:
                assert conn.prepare(statement).execute(**binds).all() \
                    == query.run(database), f"case {case}"


# ---------------------------------------------------------------------------
# The execution-API lint (internal callers stay on the new surface)
# ---------------------------------------------------------------------------

class TestExecutionApiLint:
    def test_src_has_no_direct_legacy_executions(self, capsys):
        import sys
        from pathlib import Path

        tools = Path(__file__).resolve().parents[2] / "tools"
        sys.path.insert(0, str(tools))
        try:
            import check_execution_api

            assert check_execution_api.main() == 0
        finally:
            sys.path.remove(str(tools))
