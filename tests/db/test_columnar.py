"""Tests for the columnar storage refactor and batched execution.

Covers the bank/slot layout (insert/update/delete/restore slot reuse,
dense fast path, RowView semantics) and the batch-vs-row execution
parity the differential benchmark gates: a 500-query randomised
workload plus the error-semantics corners (unknown columns, mixed-type
comparisons, OR short-circuiting) must behave identically in both
modes.
"""

import datetime as dt
import random

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Query,
    TableSchema,
    and_,
    contains,
    eq,
    ge,
    in_,
    le,
    ne,
    not_,
    or_,
)
from repro.db.aggregation import (
    aggregate_query,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)
from repro.db.engine import execute_row_ids, execution_mode
from repro.db.table import RowView, Table
from repro.errors import QueryError


@pytest.fixture()
def customers():
    schema = TableSchema(
        "customer",
        [
            Column("customer_id", DataType.INTEGER),
            Column("name", DataType.TEXT, nullable=False),
            Column("city", DataType.TEXT),
        ],
        primary_key="customer_id",
    )
    return Table(schema)


def _fill(table, n=5):
    for i in range(1, n + 1):
        table.insert(
            {"customer_id": i, "name": f"c{i}",
             "city": "Worms" if i % 2 else "Mainz"}
        )


class TestColumnBanks:
    def test_dense_scan_is_a_full_range(self, customers):
        _fill(customers)
        slots = customers.scan_slots()
        assert type(slots) is range
        assert len(slots) == 5

    def test_delete_in_middle_breaks_density_and_frees_slot(self, customers):
        _fill(customers)
        customers.delete(3)
        slots = customers.scan_slots()
        assert type(slots) is list
        assert customers.ids_for_slots(slots) == [1, 2, 4, 5]

    def test_insert_reuses_freed_slot(self, customers):
        _fill(customers)
        freed_slot = customers._slot_of[3]
        customers.delete(3)
        rid = customers.insert({"customer_id": 9, "name": "c9"})
        assert customers._slot_of[rid] == freed_slot
        # Bank length unchanged: the hole was recycled, not appended to.
        assert len(customers.bank_map()["customer_id"]) == 5
        # Scans still come out in ascending row-id order.
        assert [row["customer_id"] for row in customers] == [1, 2, 4, 5, 9]

    def test_tail_delete_keeps_layout_hole_free(self, customers):
        _fill(customers)
        customers.delete(5)
        assert type(customers.scan_slots()) is range
        assert len(customers.bank_map()["customer_id"]) == 4

    def test_tail_delete_sheds_trailing_freed_slots(self, customers):
        _fill(customers)
        customers.delete(4)  # hole at slot 3
        customers.delete(5)  # tail pop should also shed the hole
        assert len(customers.bank_map()["customer_id"]) == 3
        assert customers._free == set()
        rid = customers.insert({"customer_id": 6, "name": "c6"})
        assert sorted(customers.row_ids())[-1] == rid

    def test_emptying_table_resets_banks(self, customers):
        _fill(customers, 3)
        for rid in list(customers.row_ids()):
            customers.delete(rid)
        assert len(customers) == 0
        assert customers.bank_map()["name"] == []
        assert type(customers.scan_slots()) is range
        _fill(customers, 2)
        assert [row["name"] for row in customers] == ["c1", "c2"]

    def test_update_writes_in_place(self, customers):
        _fill(customers, 2)
        old = customers.update(1, {"city": "Speyer"})
        assert old["city"] == "Worms"
        assert customers.get(1)["city"] == "Speyer"
        assert len(customers.bank_map()["city"]) == 2

    def test_restore_roundtrips_through_slot_reuse(self, customers):
        _fill(customers)
        row = customers.delete(2)
        customers.delete(4)
        customers.restore(2, row)
        assert customers.get(2) == row
        assert [r["customer_id"] for r in customers] == [1, 2, 3, 5]
        # The hash index was rebuilt for the restored row.
        assert customers.lookup("customer_id", 2) == [2]

    def test_restore_after_newer_inserts_keeps_id_order(self, customers):
        _fill(customers, 2)
        row = customers.delete(1)
        customers.insert({"customer_id": 7, "name": "c7"})
        customers.restore(1, row)
        assert [r["customer_id"] for r in customers] == [1, 2, 7]

    def test_density_recovers_once_holes_drain(self, customers):
        _fill(customers)
        customers.delete(3)  # mid-table hole: slow scan path
        assert type(customers.scan_slots()) is list
        customers.delete(5)
        customers.delete(4)  # tail deletes shed the hole
        assert customers._free == set()
        assert type(customers.scan_slots()) is range
        assert [row["customer_id"] for row in customers] == [1, 2]

    def test_density_stays_lost_after_slot_reuse(self, customers):
        _fill(customers)
        customers.delete(3)
        customers.insert({"customer_id": 9, "name": "c9"})  # reuses slot
        customers.delete(5)  # tail delete; free is empty but order broke
        assert customers._free == set()
        assert type(customers.scan_slots()) is list
        assert [row["customer_id"] for row in customers] == [1, 2, 4, 9]

    def test_ascending_delete_sweep_leaves_clean_layout(self, customers):
        # Deleting every row front-to-back turns each row into a hole
        # until the final tail delete sheds them all at once; the banks
        # must come out empty with nothing left on the free set.
        _fill(customers, 200)
        for rid in customers.row_ids():
            customers.delete(rid)
        assert len(customers) == 0
        assert customers._free == set()
        assert customers.bank_map()["name"] == []

    def test_column_arrays_shares_one_slot_pass(self, customers):
        _fill(customers, 4)
        customers.delete(2)
        arrays = customers.column_arrays()
        assert arrays["customer_id"] == [1, 3, 4]
        assert arrays["name"] == ["c1", "c3", "c4"]
        # A fresh copy, not the live bank.
        arrays["name"].append("zz")
        assert customers.column_values("name") == ["c1", "c3", "c4"]

    def test_iteration_is_a_snapshot_under_mutation(self, customers):
        _fill(customers, 3)
        it = iter(customers)
        first = next(it)
        customers.delete(2)
        customers.insert({"customer_id": 8, "name": "c8"})
        rest = list(it)
        assert first["customer_id"] == 1
        assert [row["customer_id"] for row in rest] == [2, 3]

    def test_column_values_reads_banks(self, customers):
        _fill(customers, 3)
        assert customers.column_values("name") == ["c1", "c2", "c3"]
        customers.delete(2)
        assert customers.column_values("name") == ["c1", "c3"]
        assert customers.column_values("name", row_ids=[3, 1]) == ["c3", "c1"]


class TestRowView:
    def test_mapping_protocol(self, customers):
        _fill(customers, 1)
        view = customers.row_view(1)
        assert isinstance(view, RowView)
        assert view["name"] == "c1"
        assert view.get("city") == "Worms"
        assert view.get("nope", "x") == "x"
        assert "name" in view and "nope" not in view
        assert len(view) == 3
        assert set(view.keys()) == {"customer_id", "name", "city"}
        assert ("name", "c1") in view.items()
        assert "c1" in view.values()
        with pytest.raises(KeyError):
            view["nope"]

    def test_equals_dict_and_copies(self, customers):
        _fill(customers, 1)
        view = customers.row_view(1)
        materialised = customers.get(1)
        assert view == materialised
        assert dict(view) == materialised
        # get() hands out fresh dicts — mutating one is invisible.
        materialised["city"] = "elsewhere"
        assert customers.get(1)["city"] == "Worms"

    def test_view_reflects_updates(self, customers):
        _fill(customers, 1)
        view = customers.row_view(1)
        customers.update(1, {"city": "Speyer"})
        assert view["city"] == "Speyer"


# ---------------------------------------------------------------------------
# Batch vs row execution parity
# ---------------------------------------------------------------------------

@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "movie",
                [
                    Column("movie_id", DataType.INTEGER),
                    Column("title", DataType.TEXT, nullable=False),
                    Column("year", DataType.INTEGER),
                    Column("genre", DataType.TEXT),
                ],
                primary_key="movie_id",
            ),
            TableSchema(
                "screening",
                [
                    Column("screening_id", DataType.INTEGER),
                    Column("movie_id", DataType.INTEGER),
                    Column("date", DataType.DATE),
                    Column("price", DataType.FLOAT),
                    Column("room", DataType.TEXT),
                ],
                primary_key="screening_id",
                foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
            ),
        ]
    )
    database = Database(schema)
    rng = random.Random(7)
    genres = ("drama", "comedy", None)
    for i in range(1, 13):
        database.insert(
            "movie",
            {
                "movie_id": i,
                "title": f"movie {i}",
                "year": None if i % 5 == 0 else 1980 + i,
                "genre": genres[i % 3],
            },
        )
    base = dt.date(2022, 3, 26)
    for i in range(1, 81):
        database.insert(
            "screening",
            {
                "screening_id": i,
                "movie_id": rng.randrange(1, 13),
                "date": base + dt.timedelta(days=i % 9),
                "price": None if i % 11 == 0 else 8.0 + (i % 4),
                "room": f"room {chr(ord('A') + i % 3)}",
            },
        )
    # Mix of access paths: some deletes so slots are non-dense.
    for rid in database.table("screening").lookup("screening_id", 17):
        database.delete("screening", rid)
    database.create_ordered_index("screening", "date")
    return database


def _both_modes(fn):
    """Run ``fn`` in row then batch mode; errors become comparable values."""
    out = []
    for mode in ("row", "batch"):
        with execution_mode(mode):
            try:
                out.append(fn())
            except QueryError as exc:
                out.append(("error", str(exc)))
    return out


class TestBatchRowParity:
    def test_500_query_differential(self, db):
        rng = random.Random(23)
        rooms = ("room A", "room B", "room C")
        predicates = [
            lambda: eq("room", rng.choice(rooms)),
            lambda: ne("room", rng.choice(rooms)),
            lambda: ge("price", 8.0 + rng.randrange(0, 4)),
            lambda: le("date", dt.date(2022, 3, 26)
                       + dt.timedelta(days=rng.randrange(9))),
            lambda: in_("movie_id", tuple(
                rng.randrange(1, 13) for __ in range(rng.randrange(1, 4))
            )),
            lambda: or_(eq("room", rng.choice(rooms)),
                        eq("movie_id", rng.randrange(1, 13))),
            lambda: not_(eq("room", rng.choice(rooms))),
            lambda: contains("room", rng.choice(("a", "b", "room"))),
        ]
        checked = 0
        for __ in range(500):
            query = Query("screening")
            for __p in range(rng.randrange(0, 3)):
                query.where(rng.choice(predicates)())
            if rng.random() < 0.25:
                query.join("movie_id", "movie", "movie_id")
            if rng.random() < 0.3:
                query.order_by(rng.choice(("date", "price", "room")),
                               descending=rng.random() < 0.5)
            if rng.random() < 0.3:
                query.limit(rng.randrange(0, 12))
            if rng.random() < 0.15:
                query.select("screening_id", "room")
            roll = rng.random()
            if roll < 0.2:
                runner = lambda: query.count(db)  # noqa: B023, E731
            elif roll < 0.4:
                aggs = {"n": count(),
                        "p": rng.choice((sum_, avg, min_, max_,
                                         count_distinct))("price")}
                group = rng.choice((None, ["room"], ["movie_id", "room"]))
                runner = lambda: aggregate_query(  # noqa: B023, E731
                    db, query, aggs, group
                )
            else:
                runner = lambda: query.run(db)  # noqa: B023, E731
            row_result, batch_result = _both_modes(runner)
            assert row_result == batch_result
            checked += 1
        assert checked == 500

    def test_execute_row_ids_parity(self, db):
        plans = [
            Query("screening").where(ne("room", "room A")),
            Query("screening").where(
                or_(eq("room", "room B"), eq("movie_id", 3))
            ),
            Query("screening"),
        ]
        for query in plans:
            results = _both_modes(
                lambda: execute_row_ids(db, query.plan(db))  # noqa: B023
            )
            assert results[0] == results[1]

    def test_unknown_filter_column_raises_in_both_modes(self, db):
        query = Query("screening").where(eq("nope", 1))
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert row_result[0] == "error"

    def test_unknown_column_with_empty_input_is_silent(self, db):
        # An earlier AND part filters everything out, so the unknown
        # column is never evaluated — in either mode.
        query = Query("screening").where(
            and_(eq("room", "no such room"), eq("nope", 1))
        )
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_or_short_circuit_error_parity(self, db):
        # Rows matching the first disjunct never evaluate the second;
        # since some rows fail the first, both modes must raise.
        query = Query("screening").where(
            or_(eq("room", "room A"), eq("nope", 1))
        )
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert row_result[0] == "error"

    def test_limit_zero_never_evaluates_the_predicate(self, db):
        # islice(rows, 0) pulls no row on the row path, so an unknown
        # column is never seen; the batch path must not evaluate either.
        query = Query("screening").where(eq("nope", 1)).limit(0)
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_limited_filter_parity_across_chunk_sizes(self, db):
        from repro.db.engine import executor

        query = Query("screening").where(ne("room", "room A")).limit(7)
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert len(batch_result) == 7
        # Force multiple chunks to cover the early-exit loop.
        original = executor._FILTER_CHUNK
        executor._FILTER_CHUNK = 8
        try:
            with execution_mode("batch"):
                assert query.run(db) == batch_result
        finally:
            executor._FILTER_CHUNK = original

    def test_limited_count_parity(self, db):
        query = Query("screening").where(ne("room", "room A")).limit(5)
        row_result, batch_result = _both_modes(lambda: query.count(db))
        assert row_result == batch_result == 5

    def test_limit_satisfied_before_erroring_row_stays_silent(self, db):
        # The first row's room matches disjunct one, so islice stops
        # before any row reaches the unknown-column disjunct; the
        # chunked batch path must replay row-wise and stay silent too.
        first_room = db.table("screening").get(1)["room"]
        query = Query("screening").where(
            or_(eq("room", first_room), eq("nope", 1))
        ).limit(1)
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert len(row_result) == 1
        counts = _both_modes(lambda: query.count(db))
        assert counts[0] == counts[1] == 1

    def test_erroring_row_before_limit_still_raises(self, db):
        # No row matches the first disjunct, so the very first row
        # evaluates the unknown column in both modes.
        query = Query("screening").where(
            or_(eq("room", "nowhere"), eq("nope", 1))
        ).limit(1)
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert row_result[0] == "error"

    def test_unknown_projection_with_no_survivors_is_silent(self, db):
        # Zero matching rows: the row path's projection comprehension
        # never runs, so batch materialisation must not resolve the
        # unknown column either.
        query = (
            Query("screening")
            .where(eq("room", "nowhere"))
            .select("nonexistent")
        )
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_mixed_type_comparison_is_false_not_error(self, db):
        query = Query("screening").where(ge("room", 3))
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_contains_non_string_needle_matches_nothing(self, db):
        query = Query("screening").where(contains("room", 3))
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_unknown_group_by_column_parity(self, db):
        runner = lambda: aggregate_query(  # noqa: E731
            db, Query("screening"), {"n": count()}, ["nope"]
        )
        row_result, batch_result = _both_modes(runner)
        assert row_result == batch_result
        assert row_result[0] == "error"

    def test_unknown_aggregate_column_yields_nulls(self, db):
        runner = lambda: aggregate_query(  # noqa: E731
            db, Query("screening"), {"m": min_("nope")}, ["room"]
        )
        row_result, batch_result = _both_modes(runner)
        assert row_result == batch_result
        assert all(row["m"] is None for row in row_result)

    def test_grouping_empty_input_parity(self, db):
        runner = lambda: aggregate_query(  # noqa: E731
            db,
            Query("screening").where(eq("room", "nowhere")),
            {"n": count(), "s": sum_("price")},
            ["room"],
        )
        row_result, batch_result = _both_modes(runner)
        assert row_result == batch_result == []

    def test_global_aggregate_empty_input_parity(self, db):
        runner = lambda: aggregate_query(  # noqa: E731
            db,
            Query("screening").where(eq("room", "nowhere")),
            {"n": count(), "s": sum_("price"), "m": max_("price")},
        )
        row_result, batch_result = _both_modes(runner)
        assert row_result == batch_result == [{"n": 0, "s": 0, "m": None}]


class TestExecutionMode:
    def test_mode_restored_after_block(self, db):
        from repro.db.engine import executor

        assert executor._BATCH_MODE is True
        with execution_mode("row"):
            assert executor._BATCH_MODE is False
            with execution_mode("batch"):
                assert executor._BATCH_MODE is True
            assert executor._BATCH_MODE is False
        assert executor._BATCH_MODE is True

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            with execution_mode("vectorised"):
                pass  # pragma: no cover
