"""Tests for transactions: atomicity, rollback, savepoints."""

import pytest

from repro.db import Column, Database, DatabaseSchema, DataType, TableSchema
from repro.errors import TransactionError


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "account",
                [
                    Column("account_id", DataType.INTEGER),
                    Column("balance", DataType.INTEGER, nullable=False),
                ],
                primary_key="account_id",
            )
        ]
    )
    database = Database(schema)
    database.insert("account", {"account_id": 1, "balance": 100})
    database.insert("account", {"account_id": 2, "balance": 50})
    return database


class TestBeginCommitRollback:
    def test_commit_keeps_changes(self, db):
        db.transactions.begin()
        db.insert("account", {"account_id": 3, "balance": 10})
        db.transactions.commit()
        assert db.count("account") == 3

    def test_rollback_undoes_insert(self, db):
        db.transactions.begin()
        db.insert("account", {"account_id": 3, "balance": 10})
        db.transactions.rollback()
        assert db.count("account") == 2

    def test_rollback_undoes_update(self, db):
        rid = db.table("account").lookup("account_id", 1)[0]
        db.transactions.begin()
        db.update("account", rid, {"balance": 0})
        db.transactions.rollback()
        assert db.table("account").get(rid)["balance"] == 100

    def test_rollback_undoes_delete(self, db):
        rid = db.table("account").lookup("account_id", 2)[0]
        db.transactions.begin()
        db.delete("account", rid)
        db.transactions.rollback()
        assert db.table("account").get(rid)["balance"] == 50

    def test_rollback_undoes_mixed_sequence(self, db):
        rid1 = db.table("account").lookup("account_id", 1)[0]
        rid2 = db.table("account").lookup("account_id", 2)[0]
        before = db.rows("account")
        db.transactions.begin()
        db.update("account", rid1, {"balance": 70})
        db.insert("account", {"account_id": 3, "balance": 30})
        db.delete("account", rid2)
        db.transactions.rollback()
        assert db.rows("account") == before

    def test_nested_begin_rejected(self, db):
        db.transactions.begin()
        with pytest.raises(TransactionError):
            db.transactions.begin()
        db.transactions.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.transactions.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.transactions.rollback()

    def test_counters(self, db):
        db.transactions.begin()
        db.transactions.commit()
        db.transactions.begin()
        db.transactions.rollback()
        assert db.transactions.committed_count == 1
        assert db.transactions.aborted_count == 1


class TestDataVersion:
    def test_commit_bumps_version(self, db):
        before = db.data_version
        db.transactions.begin()
        db.insert("account", {"account_id": 3, "balance": 1})
        db.transactions.commit()
        assert db.data_version > before

    def test_autocommit_bumps_version(self, db):
        before = db.data_version
        db.insert("account", {"account_id": 3, "balance": 1})
        assert db.data_version > before

    def test_listener_fires(self, db):
        events = []
        db.on_change(lambda: events.append(1))
        db.insert("account", {"account_id": 3, "balance": 1})
        assert events == [1]


class TestSavepoints:
    def test_partial_rollback(self, db):
        db.transactions.begin()
        db.insert("account", {"account_id": 3, "balance": 1})
        db.transactions.savepoint("sp")
        db.insert("account", {"account_id": 4, "balance": 2})
        db.transactions.rollback_to_savepoint("sp")
        db.transactions.commit()
        assert db.count("account") == 3
        assert db.find_one("account", "account_id", 4) is None

    def test_unknown_savepoint_rejected(self, db):
        db.transactions.begin()
        with pytest.raises(TransactionError):
            db.transactions.rollback_to_savepoint("nope")
        db.transactions.rollback()

    def test_savepoint_outside_txn_rejected(self, db):
        with pytest.raises(TransactionError):
            db.transactions.savepoint("sp")
