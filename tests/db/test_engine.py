"""Tests for the cost-based query engine: planner, executor, EXPLAIN."""

import datetime as dt

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Query,
    TableSchema,
    and_,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    or_,
)
from repro.db.engine import (
    CountOnly,
    IndexEq,
    IndexRange,
    SeqScan,
    execute_row_ids,
)
from repro.db.ordering import ordering_key
from repro.errors import QueryError


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "movie",
                [
                    Column("movie_id", DataType.INTEGER),
                    Column("title", DataType.TEXT, nullable=False),
                    Column("year", DataType.INTEGER),
                ],
                primary_key="movie_id",
            ),
            TableSchema(
                "screening",
                [
                    Column("screening_id", DataType.INTEGER),
                    Column("movie_id", DataType.INTEGER),
                    Column("date", DataType.DATE),
                    Column("price", DataType.FLOAT),
                    Column("room", DataType.TEXT),
                ],
                primary_key="screening_id",
                foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
            ),
        ]
    )
    database = Database(schema)
    movies = [
        (1, "Heat", 1995),
        (2, "Ran", 1985),
        (3, "Alien", None),
        (4, "Blade Runner", 1982),
        (5, "Arrival", 2016),
    ]
    for movie_id, title, year in movies:
        database.insert(
            "movie", {"movie_id": movie_id, "title": title, "year": year}
        )
    base = dt.date(2022, 3, 26)
    for i in range(1, 21):
        database.insert(
            "screening",
            {
                "screening_id": i,
                "movie_id": (i % 5) + 1,
                "date": base + dt.timedelta(days=i % 7),
                "price": 8.0 + (i % 4),
                "room": f"room {chr(ord('A') + i % 3)}",
            },
        )
    database.create_ordered_index("screening", "date")
    database.create_ordered_index("screening", "price")
    database.create_ordered_index("movie", "year")
    return database


class TestPlannerChoices:
    def test_equality_on_indexed_column_uses_index_eq(self, db):
        explained = Query("screening").where(eq("screening_id", 3)).explain(db)
        assert "IndexEq on screening using screening_id" in explained

    def test_range_on_ordered_index_uses_index_range(self, db):
        explained = (
            Query("screening")
            .where(and_(ge("date", dt.date(2022, 3, 27)),
                        le("date", dt.date(2022, 3, 28))))
            .explain(db)
        )
        assert "IndexRange on screening using date" in explained
        assert "SeqScan" not in explained

    def test_no_index_means_seq_scan(self, db):
        explained = Query("screening").where(eq("room", "room A")).explain(db)
        assert "SeqScan on screening" in explained

    def test_or_of_indexable_equalities_unions_probes(self, db):
        explained = (
            Query("screening")
            .where(or_(eq("screening_id", 1), eq("screening_id", 2)))
            .explain(db)
        )
        assert "IndexOrUnion on screening" in explained
        assert "Filter" in explained  # the Or predicate is re-checked

    def test_or_with_unindexable_disjunct_stays_seq_scan(self, db):
        explained = (
            Query("screening")
            .where(or_(eq("screening_id", 1), eq("room", "room B")))
            .explain(db)
        )
        assert "SeqScan on screening" in explained
        assert "IndexOrUnion" not in explained

    def test_order_by_with_ordered_index_skips_sort(self, db):
        explained = Query("screening").order_by("date").explain(db)
        assert "order=asc" in explained
        assert "Sort" not in explained

    def test_order_by_without_index_sorts(self, db):
        explained = Query("screening").order_by("room").explain(db)
        assert "Sort by room asc" in explained

    def test_order_by_with_limit_becomes_top_n(self, db):
        explained = Query("screening").order_by("room").limit(3).explain(db)
        assert "TopN 3 by room asc" in explained

    def test_count_plans_count_only(self, db):
        plan = Query("screening").where(eq("room", "room A")).plan(
            db, count_only=True
        )
        assert isinstance(plan, CountOnly)
        assert "CountOnly" in Query("screening").explain(db, count_only=True)

    def test_join_strategy_is_costed(self, db):
        # movie.movie_id is the primary key (hash-indexed): with 20 outer
        # rows against a 5-row build side, either strategy is defensible,
        # but the planner must pick one of the two join operators.
        explained = (
            Query("screening").join("movie_id", "movie", "movie_id").explain(db)
        )
        assert "Join movie on movie_id = movie.movie_id" in explained

    def test_hash_join_when_inner_not_indexed(self, db):
        explained = (
            Query("movie").join("year", "screening", "price").explain(db)
        )
        assert "HashJoin screening" in explained

    def test_selective_equality_beats_range(self, db):
        # Both access paths are available; the point lookup is cheaper.
        explained = (
            Query("screening")
            .where(and_(eq("screening_id", 3), ge("date", dt.date(2022, 3, 26))))
            .explain(db)
        )
        assert "IndexEq on screening using screening_id" in explained


class TestExecutorParity:
    def test_range_results_match_scan_order(self, db):
        rows = (
            Query("screening")
            .where(and_(ge("date", dt.date(2022, 3, 27)),
                        le("date", dt.date(2022, 3, 29))))
            .run(db)
        )
        ids = [r["screening_id"] for r in rows]
        assert ids == sorted(ids)  # row-id order, like a scan
        assert all(
            dt.date(2022, 3, 27) <= r["date"] <= dt.date(2022, 3, 29)
            for r in rows
        )

    def test_ordered_scan_equals_stable_sort(self, db):
        via_index = Query("screening").order_by("date").run(db)
        expected = Query("screening").run(db)
        expected.sort(key=lambda r: ordering_key(r["date"]))
        assert via_index == expected

    def test_descending_ties_keep_row_id_order(self, db):
        via_index = Query("screening").order_by("date", descending=True).run(db)
        expected = Query("screening").run(db)
        expected.sort(key=lambda r: ordering_key(r["date"]), reverse=True)
        assert via_index == expected

    def test_order_by_nullable_indexed_column_keeps_nulls_last(self, db):
        rows = Query("movie").order_by("year").run(db)
        assert rows[-1]["title"] == "Alien"
        assert [r["year"] for r in rows[:-1]] == [1982, 1985, 1995, 2016]

    def test_order_by_nullable_indexed_column_descending_nulls_first(self, db):
        rows = Query("movie").order_by("year", descending=True).run(db)
        assert rows[0]["title"] == "Alien"
        assert [r["year"] for r in rows[1:]] == [2016, 1995, 1985, 1982]

    def test_top_n_matches_full_sort_prefix(self, db):
        limited = Query("screening").order_by("price").limit(5).run(db)
        everything = Query("screening").order_by("price").run(db)
        assert limited == everything[:5]

    def test_top_n_descending_matches_full_sort_prefix(self, db):
        limited = (
            Query("screening").order_by("room", descending=True).limit(4).run(db)
        )
        everything = Query("screening").order_by("room", descending=True).run(db)
        assert limited == everything[:4]

    def test_results_are_fresh_dicts(self, db):
        rows = Query("movie").run(db)
        rows[0]["title"] = "mutated"
        assert Query("movie").run(db)[0]["title"] == "Heat"


class TestCountOnly:
    def test_count_equals_len_run(self, db):
        query = Query("screening").where(eq("room", "room A"))
        assert query.count(db) == len(query.run(db))

    def test_count_whole_table_is_cardinality(self, db):
        assert Query("screening").count(db) == 20

    def test_count_respects_limit(self, db):
        assert Query("screening").limit(7).count(db) == 7
        assert Query("screening").where(eq("room", "room A")).limit(2).count(db) == 2


class TestJoinSemantics:
    def test_joined_columns_widen_under_table_dot_column(self, db):
        rows = (
            Query("screening").join("movie_id", "movie", "movie_id").limit(1).run(db)
        )
        row = rows[0]
        assert "movie.title" in row and "movie.year" in row
        assert "screening_id" in row  # root columns keep bare names

    def test_none_join_keys_are_skipped(self, db):
        db.insert(
            "screening",
            {"screening_id": 99, "movie_id": None, "date": dt.date(2022, 4, 1),
             "price": 9.0, "room": "room Z"},
        )
        rows = Query("screening").join("movie_id", "movie", "movie_id").run(db)
        assert all(r["movie_id"] is not None for r in rows)
        assert len(rows) == 20  # the NULL-keyed row is dropped

    def test_predicate_over_joined_column(self, db):
        rows = (
            Query("screening")
            .join("movie_id", "movie", "movie_id")
            .where(eq("movie.title", "Heat"))
            .run(db)
        )
        assert rows and all(r["movie.title"] == "Heat" for r in rows)

    def test_root_predicate_pushes_below_join(self, db):
        explained = (
            Query("screening")
            .join("movie_id", "movie", "movie_id")
            .where(and_(eq("screening_id", 3), gt("movie.year", 1980)))
            .explain(db)
        )
        # The root filter sits under the join, the joined-column filter above.
        join_at = explained.index("Join movie")
        assert explained.index("movie.year > 1980") < join_at
        assert explained.index("screening_id = 3") > join_at

    def test_join_with_unknown_predicate_column_raises(self, db):
        query = Query("screening").where(eq("missing_column", 1))
        with pytest.raises(QueryError):
            query.run(db)


class TestMixedTypeOrdering:
    def test_ordering_key_is_total(self):
        values = [3, "b", None, 1.5, dt.date(2022, 1, 1), dt.time(12, 0),
                  True, "a", None, 2]
        ordered = sorted(values, key=ordering_key)
        # Numerics first (bool included), then text, date, time, NULLs last.
        assert ordered[:4] == [True, 1.5, 2, 3]
        assert ordered[4:6] == ["a", "b"]
        assert ordered[6] == dt.date(2022, 1, 1)
        assert ordered[7] == dt.time(12, 0)
        assert ordered[8:] == [None, None]

    def test_order_by_mixed_type_column_does_not_raise(self, db):
        # Simulate drifted data via the un-coercing restore() path: a
        # movie whose year is a string.  The seed sort key raised
        # TypeError here; the type-ranked key orders it deterministically.
        table = db.table("movie")
        row = table.get(1)
        table.delete(1)
        row["year"] = "nineteen ninety-five"
        table.restore(1, row)
        rows = Query("movie").order_by("year").run(db)
        years = [r["year"] for r in rows]
        assert years == [1982, 1985, 2016, "nineteen ninety-five", None]

    def test_mixed_type_ordering_is_deterministic(self, db):
        table = db.table("movie")
        row = table.get(2)
        table.delete(2)
        row["year"] = "eighty-five"
        table.restore(2, row)
        first = Query("movie").order_by("year").run(db)
        second = Query("movie").order_by("year").run(db)
        assert first == second


class TestExecuteRowIds:
    def test_index_eq_plan_yields_ids(self, db):
        plan = Query("screening").where(eq("screening_id", 3)).plan(db)
        assert execute_row_ids(db, plan) == [3]

    def test_filtered_scan_yields_ids_in_order(self, db):
        plan = Query("screening").where(eq("room", "room A")).plan(db)
        ids = execute_row_ids(db, plan)
        assert ids == sorted(ids)
        assert ids  # room A exists

    def test_range_plan_yields_ids(self, db):
        plan = (
            Query("screening")
            .where(ge("date", dt.date(2022, 4, 1)))
            .plan(db)
        )
        ids = execute_row_ids(db, plan)
        rows = Query("screening").where(ge("date", dt.date(2022, 4, 1))).run(db)
        assert len(ids) == len(rows)

    def test_non_id_preserving_plan_rejected(self, db):
        plan = Query("screening").join("movie_id", "movie", "movie_id").plan(db)
        with pytest.raises(QueryError):
            execute_row_ids(db, plan)


class TestOrderedIndexMaintenance:
    def test_insert_update_delete_keep_index_consistent(self, db):
        def range_ids():
            return [
                r["screening_id"]
                for r in Query("screening")
                .where(and_(ge("price", 10.0), le("price", 11.0)))
                .run(db)
            ]

        before = range_ids()
        db.insert(
            "screening",
            {"screening_id": 50, "movie_id": 1, "date": dt.date(2022, 4, 2),
             "price": 10.5, "room": "room A"},
        )
        assert 50 in range_ids()
        db.update("screening", 21, {"price": 20.0})  # row id 21 = screening 50
        assert 50 not in range_ids()
        db.update("screening", 21, {"price": 10.5})
        assert 50 in range_ids()
        db.delete("screening", 21)
        assert range_ids() == before

    def test_unbounded_lt_gt(self, db):
        low = Query("screening").where(lt("price", 9.0)).run(db)
        high = Query("screening").where(ge("price", 9.0)).run(db)
        assert len(low) + len(high) == 20


class TestInListAccessPath:
    def test_in_list_on_indexed_column_uses_probe_union(self, db):
        db.create_index("screening", "movie_id")
        explained = (
            Query("screening").where(in_("movie_id", (1, 2))).explain(db)
        )
        assert "IndexInList on screening using movie_id" in explained
        assert "SeqScan" not in explained

    def test_in_list_results_match_scan(self, db):
        db.create_index("screening", "movie_id")
        via_index = Query("screening").where(in_("movie_id", (2, 4))).run(db)
        scanned = [
            r for r in Query("screening").run(db) if r["movie_id"] in (2, 4)
        ]
        assert via_index == scanned

    def test_in_list_without_index_stays_seq_scan(self, db):
        explained = (
            Query("screening").where(in_("room", ("room A",))).explain(db)
        )
        assert "SeqScan on screening" in explained

    def test_empty_in_list(self, db):
        db.create_index("screening", "movie_id")
        assert Query("screening").where(in_("movie_id", ())).run(db) == []

    def test_string_in_value_keeps_substring_semantics(self, db):
        # Comparison(col, "in", "room A") is a substring test ("room A"
        # contains the value), not a probe list — a probe union over the
        # string's characters would return nothing.
        from repro.db.query import Comparison

        db.create_index("screening", "room")
        predicate = Comparison("room", "in", "room A")
        explained = Query("screening").where(predicate).explain(db)
        assert "IndexInList" not in explained
        via_engine = Query("screening").where(predicate).run(db)
        scanned = [
            r for r in Query("screening").run(db) if r["room"] in "room A"
        ]
        assert via_engine == scanned and via_engine

    def test_in_list_row_ids(self, db):
        db.create_index("screening", "movie_id")
        plan = Query("screening").where(in_("movie_id", (1, 3))).plan(db)
        ids = execute_row_ids(db, plan)
        assert ids == sorted(ids)
        assert ids


class TestJoinReordering:
    @pytest.fixture()
    def multi_db(self):
        schema = DatabaseSchema(
            [
                TableSchema(
                    "genre",
                    [
                        Column("genre_id", DataType.INTEGER),
                        Column("name", DataType.TEXT),
                    ],
                    primary_key="genre_id",
                ),
                TableSchema(
                    "movie",
                    [
                        Column("movie_id", DataType.INTEGER),
                        Column("genre_id", DataType.INTEGER),
                        Column("title", DataType.TEXT),
                    ],
                    primary_key="movie_id",
                    foreign_keys=[ForeignKey("genre_id", "genre", "genre_id")],
                ),
                TableSchema(
                    "screening",
                    [
                        Column("screening_id", DataType.INTEGER),
                        Column("movie_id", DataType.INTEGER),
                    ],
                    primary_key="screening_id",
                    foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
                ),
                TableSchema(
                    "reservation",
                    [
                        Column("reservation_id", DataType.INTEGER),
                        Column("screening_id", DataType.INTEGER),
                    ],
                    primary_key="reservation_id",
                    foreign_keys=[
                        ForeignKey("screening_id", "screening", "screening_id")
                    ],
                ),
            ]
        )
        database = Database(schema)
        for genre_id in range(1, 4):
            database.insert("genre", {"genre_id": genre_id, "name": f"g{genre_id}"})
        for movie_id in range(1, 6):
            database.insert(
                "movie",
                {"movie_id": movie_id, "genre_id": (movie_id % 3) + 1,
                 "title": f"m{movie_id}"},
            )
        for screening_id in range(1, 21):
            database.insert(
                "screening",
                {"screening_id": screening_id,
                 "movie_id": (screening_id % 5) + 1},
            )
        # A fat fanout: many reservations per screening.
        rid = 1
        for screening_id in range(1, 21):
            for __ in range(4):
                database.insert(
                    "reservation",
                    {"reservation_id": rid, "screening_id": screening_id},
                )
                rid += 1
        database.create_index("reservation", "screening_id")
        return database

    def _three_join_query(self):
        return (
            Query("screening")
            .join("screening_id", "reservation", "screening_id")
            .join("movie_id", "movie", "movie_id")
            .join("movie.genre_id", "genre", "genre_id")
        )

    def test_three_joins_schedule_fat_fanout_last(self, multi_db):
        explained = self._three_join_query().explain(multi_db)
        # reservation multiplies rows 4x; movie and genre keep 1:1 —
        # the greedy order must run reservation last even though the
        # query states it first.  (Deeper in the tree = earlier.)
        assert explained.index("reservation") < explained.index("movie")
        assert "[reordered]" in explained

    def test_dependent_join_stays_after_its_source(self, multi_db):
        explained = self._three_join_query().explain(multi_db)
        # genre keys on movie.genre_id, so movie must join first, i.e.
        # appear deeper (later in the rendered tree) than genre.
        assert explained.index("IndexNestedLoopJoin movie") > \
            explained.index("genre_id = genre.genre_id")

    def test_reordered_results_match_stated_order_semantics(self, multi_db):
        rows = self._three_join_query().run(multi_db)
        assert len(rows) == 80  # 20 screenings x 4 reservations x 1 x 1
        assert all(
            "reservation.reservation_id" in r
            and "movie.title" in r
            and "genre.name" in r
            for r in rows
        )

    def test_two_joins_keep_stated_order(self, multi_db):
        explained = (
            Query("screening")
            .join("screening_id", "reservation", "screening_id")
            .join("movie_id", "movie", "movie_id")
            .explain(multi_db)
        )
        assert "[reordered]" not in explained
        # Stated first join sits deepest in the tree.
        assert explained.index("reservation") > explained.index("movie")


class TestOrUnionExecution:
    """OR-of-equality probe unions: results identical to the scan plan."""

    def _expected(self, db, predicate):
        return [
            row for row in db.rows("screening") if predicate.matches(row)
        ]

    def test_results_match_scan_semantics(self, db):
        predicate = or_(eq("screening_id", 3), eq("screening_id", 7))
        rows = Query("screening").where(predicate).run(db)
        assert rows == self._expected(db, predicate)

    def test_union_deduplicates_overlapping_probes(self, db):
        predicate = or_(eq("screening_id", 3), eq("screening_id", 3))
        rows = Query("screening").where(predicate).run(db)
        assert rows == self._expected(db, predicate)
        assert len(rows) == 1

    def test_row_ids_preserved_for_candidates(self, db):
        predicate = or_(eq("screening_id", 2), eq("screening_id", 9))
        plan = Query("screening").where(predicate).plan(db)
        assert execute_row_ids(db, plan) == [2, 9]

    def test_template_rebinds_constants(self, db):
        cache = db.plan_cache

        def run(a, b):
            return Query("screening").where(
                or_(eq("screening_id", a), eq("screening_id", b))
            ).run(db)

        run(1, 2)
        misses = cache.misses
        rows = run(5, 6)
        assert cache.misses == misses  # same shape: bound, not replanned
        assert sorted(r["screening_id"] for r in rows) == [5, 6]

    def test_uncoercible_constant_falls_back_to_scan(self, db):
        predicate = or_(eq("screening_id", 1),
                        eq("screening_id", "not-an-int"))
        rows = Query("screening").where(predicate).run(db)
        assert rows == self._expected(db, predicate)
        assert [r["screening_id"] for r in rows] == [1]

    def test_or_across_different_columns(self, db):
        db.create_index("screening", "movie_id")
        predicate = or_(eq("movie_id", 2), eq("screening_id", 7))
        explained = Query("screening").where(predicate).explain(db)
        assert "IndexOrUnion" in explained
        rows = Query("screening").where(predicate).run(db)
        assert rows == self._expected(db, predicate)
