"""Property-based tests of core database invariants (hypothesis)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
    entropy,
    normalized_entropy,
)
from repro.errors import ConstraintViolation

names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
values = st.one_of(st.integers(-5, 5), names, st.none())


def make_db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    Column("pk", DataType.INTEGER),
                    Column("a", DataType.TEXT),
                    Column("b", DataType.INTEGER),
                ],
                primary_key="pk",
            )
        ]
    )
    return Database(schema)


@st.composite
def row_batches(draw):
    n = draw(st.integers(1, 12))
    rows = []
    for pk in range(1, n + 1):
        rows.append(
            {
                "pk": pk,
                "a": draw(st.one_of(names, st.none())),
                "b": draw(st.one_of(st.integers(-3, 3), st.none())),
            }
        )
    return rows


class TestEntropyProperties:
    @given(st.lists(values, max_size=40))
    def test_entropy_non_negative(self, data):
        assert entropy(data) >= 0.0

    @given(st.lists(values, min_size=1, max_size=40))
    def test_entropy_bounded_by_log_distinct(self, data):
        import math

        distinct = len(set(data))
        bound = math.log2(distinct) if distinct > 1 else 0.0
        assert entropy(data) <= bound + 1e-9

    @given(st.lists(values, max_size=40))
    def test_normalized_entropy_in_unit_interval(self, data):
        assert 0.0 <= normalized_entropy(data) <= 1.0 + 1e-9

    @given(st.lists(values, min_size=1, max_size=20))
    def test_entropy_permutation_invariant(self, data):
        assert entropy(data) == pytest.approx(entropy(list(reversed(data))))


class TestTableInvariants:
    @given(row_batches())
    @settings(max_examples=50)
    def test_insert_then_read_roundtrip(self, rows):
        db = make_db()
        ids = db.insert_many("t", rows)
        for rid, row in zip(ids, rows):
            stored = db.table("t").get(rid)
            assert stored == row

    @given(row_batches())
    @settings(max_examples=50)
    def test_distinct_count_matches_python(self, rows):
        db = make_db()
        db.insert_many("t", rows)
        stored = db.table("t").column_values("a")
        expected = len({v for v in stored if v is not None})
        assert db.table("t").distinct_count("a") == expected

    @given(row_batches())
    @settings(max_examples=50)
    def test_duplicate_pk_always_rejected(self, rows):
        db = make_db()
        db.insert_many("t", rows)
        with pytest.raises(ConstraintViolation):
            db.insert("t", {"pk": rows[0]["pk"], "a": None, "b": None})

    @given(row_batches(), st.integers(0, 11))
    @settings(max_examples=50)
    def test_delete_removes_exactly_one(self, rows, index):
        db = make_db()
        ids = db.insert_many("t", rows)
        victim = ids[index % len(ids)]
        db.delete("t", victim)
        assert len(db.table("t")) == len(rows) - 1
        remaining_pks = Counter(db.table("t").column_values("pk"))
        assert all(count == 1 for count in remaining_pks.values())


class TestTransactionInvariants:
    @given(row_batches(), row_batches())
    @settings(max_examples=40)
    def test_rollback_restores_exact_state(self, initial, extra):
        db = make_db()
        db.insert_many("t", initial)
        before = db.rows("t")
        db.transactions.begin()
        offset = len(initial)
        for i, row in enumerate(extra):
            row = dict(row)
            row["pk"] = offset + i + 1
            db.insert("t", row)
        for rid in db.table("t").row_ids()[: len(initial)]:
            db.update("t", rid, {"b": 99})
        db.transactions.rollback()
        assert db.rows("t") == before

    @given(row_batches())
    @settings(max_examples=40)
    def test_lookup_agrees_with_scan(self, rows):
        db = make_db()
        db.insert_many("t", rows)
        table = db.table("t")
        for value in {r["a"] for r in rows if r["a"] is not None}:
            indexed = set(table.lookup("a", value))
            scanned = {
                rid
                for rid in table.row_ids()
                if table.get(rid)["a"] == value
            }
            assert indexed == scanned
