"""Tests for MCV-aware plan re-specialisation in the plan cache."""

import random
import threading

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    Param,
    TableSchema,
    and_,
    eq,
    ge,
    select,
)

HOT = "HOT"
RARE = [f"rare{i:02d}" for i in range(20)]


@pytest.fixture()
def db():
    """A 500-row skewed table: 90% of rows share ``hub == 'HOT'``.

    With a hash index on ``hub`` and an ordered index on ``price``, the
    eq probe is near-worthless under the hot constant (the template
    planned there picks the price range) but wins by orders of
    magnitude under any rare constant — the shape respecialisation
    exists for.
    """
    schema = DatabaseSchema(
        [
            TableSchema(
                "item",
                [
                    Column("item_id", DataType.INTEGER),
                    Column("hub", DataType.TEXT, nullable=False),
                    Column("price", DataType.FLOAT, nullable=False),
                ],
                primary_key="item_id",
            )
        ]
    )
    database = Database(schema)
    rng = random.Random(5)
    rows = []
    for item_id in range(1, 501):
        row = {
            "item_id": item_id,
            "hub": HOT if rng.random() < 0.9 else rng.choice(RARE),
            "price": round(rng.uniform(0.0, 100.0), 2),
        }
        rows.append(row)
        database.insert("item", dict(row))
    database.create_index("item", "hub")
    database.create_ordered_index("item", "price")
    database.test_oracle_rows = rows  # independent result oracle
    return database


def prepare(database):
    return database.connect(name="respec").prepare(
        select("item")
        .where(and_(eq("hub", Param("h")), ge("price", Param("p"))))
        .order_by("item_id")
    )


def expected(database, hub, price):
    return [
        row
        for row in database.test_oracle_rows  # already in item_id order
        if row["hub"] == hub and row["price"] >= price
    ]


def warm_hot(prepared, n=4):
    """Establish the template under the hot constant's statistics."""
    for _ in range(n):
        prepared.execute(h=HOT, p=50.0).all()


class TestDivergenceDetection:
    def test_hot_bindings_never_diverge(self, db):
        prepared = prepare(db)
        warm_hot(prepared, n=10)
        assert db.plan_cache.respec_counters()["divergences"] == 0

    def test_rare_binding_replans_until_fork_threshold(self, db):
        cache = db.plan_cache
        prepared = prepare(db)
        warm_hot(prepared)
        k = cache.fork_threshold
        for i in range(k - 1):
            rows = prepared.execute(h=RARE[0], p=10.0).all()
            assert rows == expected(db, RARE[0], 10.0)
        counters = cache.respec_counters()
        assert counters["divergences"] == k - 1
        assert counters["replans"] == k - 1
        assert counters["forks"] == 0
        rows = prepared.execute(h=RARE[0], p=10.0).all()
        assert rows == expected(db, RARE[0], 10.0)
        counters = cache.respec_counters()
        assert counters["forks"] == 1
        assert counters["fork_binds"] == 1

    def test_forked_template_serves_whole_bucket(self, db):
        # Constants absent from the MCV list all price in the uniform
        # tail — one bucket, so one forked template serves them all
        # after the threshold (rare-but-MCV-listed constants would each
        # get their own bucket instead).
        ghosts = [f"ghost{i:02d}" for i in range(10)]
        cache = db.plan_cache
        prepared = prepare(db)
        warm_hot(prepared)
        for i in range(cache.fork_threshold):
            assert prepared.execute(h=ghosts[i], p=10.0).all() == []
        forks_after_threshold = cache.respec_counters()["forks"]
        assert forks_after_threshold == 1
        for hub in ghosts:
            assert prepared.execute(h=hub, p=10.0).all() == []
        counters = cache.respec_counters()
        assert counters["forks"] == 1  # no further compiles
        assert counters["fork_binds"] >= len(ghosts)

    def test_divergence_ratio_boundary(self, db):
        # Hot sel ~0.9 vs rare tail estimate: the observed ratio sits in
        # the hundreds.  A threshold above it must never trigger; one
        # below it must.
        cache = db.plan_cache
        cache.divergence_ratio = 1e6
        prepared = prepare(db)
        warm_hot(prepared)
        for _ in range(5):
            prepared.execute(h=RARE[1], p=10.0).all()
        assert cache.respec_counters()["divergences"] == 0
        cache.divergence_ratio = 8.0
        prepared.execute(h=RARE[1], p=10.0).all()
        assert cache.respec_counters()["divergences"] == 1

    def test_respec_disabled_keeps_template(self, db):
        cache = db.plan_cache
        cache.respec_enabled = False
        prepared = prepare(db)
        warm_hot(prepared)
        for hub in RARE[:5]:
            rows = prepared.execute(h=hub, p=10.0).all()
            assert rows == expected(db, hub, 10.0)
        assert cache.respec_counters() == {
            "divergences": 0, "replans": 0, "forks": 0, "fork_binds": 0,
        }

    def test_small_tables_never_respecialize(self, db):
        db.plan_cache.respec_min_rows = 10_000  # above the 500 rows
        prepared = prepare(db)
        warm_hot(prepared)
        for hub in RARE[:5]:
            prepared.execute(h=hub, p=10.0).all()
        assert db.plan_cache.respec_counters()["divergences"] == 0


class TestInvalidation:
    def test_ddl_version_bump_invalidates_fork(self, db):
        cache = db.plan_cache
        prepared = prepare(db)
        warm_hot(prepared)
        for _ in range(cache.fork_threshold + 2):
            prepared.execute(h=RARE[2], p=10.0).all()
        assert cache.respec_counters()["forks"] == 1
        replans_before = cache.respec_counters()["replans"]
        # DDL bumps the plan stamp: the parent template, the fork and
        # the guard meta are all stale and must be rebuilt.
        db.create_ordered_index("item", "item_id")
        warm_hot(prepared)
        for _ in range(cache.fork_threshold + 2):
            rows = prepared.execute(h=RARE[2], p=10.0).all()
            assert rows == expected(db, RARE[2], 10.0)
        counters = cache.respec_counters()
        # The fresh template forked again (recompiled, not reused) and
        # its bucket counted divergences from scratch first.
        assert counters["forks"] == 2
        assert counters["replans"] > replans_before

    def test_results_identical_across_arms(self, db):
        # Randomised differential: respec on vs a frozen-template twin.
        frozen = prepare(db)
        db.plan_cache.respec_enabled = False
        baseline = {}
        warm_hot(frozen)
        rng = random.Random(23)
        cases = [
            (HOT if rng.random() < 0.4 else rng.choice(RARE),
             round(rng.uniform(0.0, 100.0), 2))
            for _ in range(100)
        ]
        for case in cases:
            baseline[case] = frozen.execute(h=case[0], p=case[1]).all()
        db.plan_cache.respec_enabled = True
        live = prepare(db)
        warm_hot(live)
        for case in cases:
            assert live.execute(h=case[0], p=case[1]).all() == \
                baseline[case]


class TestThreadSafety:
    def test_sixteen_threads_on_the_fork_path(self, db):
        prepared = prepare(db)
        warm_hot(prepared)
        barrier = threading.Barrier(16)
        errors = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                barrier.wait()
                for turn in range(40):
                    hub = HOT if rng.random() < 0.3 else rng.choice(RARE)
                    price = round(rng.uniform(0.0, 100.0), 2)
                    rows = prepared.execute(h=hub, p=price).all()
                    if rows != expected(db, hub, price):
                        raise AssertionError(
                            f"thread {seed}: wrong rows for {hub}/{price}"
                        )
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        counters = db.plan_cache.respec_counters()
        assert counters["divergences"] > 0
        assert counters["forks"] >= 1
