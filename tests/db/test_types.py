"""Tests for the column type system."""

import datetime as dt

import pytest

from repro.db.types import DataType, coerce, is_null, python_type, render
from repro.errors import TypeMismatchError


class TestCoerceInteger:
    def test_int_passthrough(self):
        assert coerce(42, DataType.INTEGER) == 42

    def test_string_parses(self):
        assert coerce(" 17 ", DataType.INTEGER) == 17

    def test_integral_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(3.5, DataType.INTEGER)

    def test_bool_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.INTEGER)

    def test_garbage_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("four", DataType.INTEGER)


class TestCoerceFloat:
    def test_int_widens(self):
        assert coerce(2, DataType.FLOAT) == 2.0

    def test_string_parses(self):
        assert coerce("2.5", DataType.FLOAT) == 2.5

    def test_bool_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(False, DataType.FLOAT)


class TestCoerceText:
    def test_string_passthrough(self):
        assert coerce("hello", DataType.TEXT) == "hello"

    def test_number_rendered(self):
        assert coerce(4, DataType.TEXT) == "4"

    def test_list_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce([1, 2], DataType.TEXT)


class TestCoerceBoolean:
    @pytest.mark.parametrize("word", ["yes", "Y", "true", "1", "t"])
    def test_truthy_words(self, word):
        assert coerce(word, DataType.BOOLEAN) is True

    @pytest.mark.parametrize("word", ["no", "N", "false", "0", "f"])
    def test_falsy_words(self, word):
        assert coerce(word, DataType.BOOLEAN) is False

    def test_int_zero_one(self):
        assert coerce(1, DataType.BOOLEAN) is True
        assert coerce(0, DataType.BOOLEAN) is False

    def test_other_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(2, DataType.BOOLEAN)

    def test_maybe_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("maybe", DataType.BOOLEAN)


class TestCoerceDate:
    def test_iso_format(self):
        assert coerce("2022-03-26", DataType.DATE) == dt.date(2022, 3, 26)

    def test_german_format(self):
        assert coerce("26.03.2022", DataType.DATE) == dt.date(2022, 3, 26)

    def test_us_format(self):
        assert coerce("3/26/2022", DataType.DATE) == dt.date(2022, 3, 26)

    def test_date_passthrough(self):
        today = dt.date(2022, 1, 1)
        assert coerce(today, DataType.DATE) is today

    def test_datetime_truncates(self):
        moment = dt.datetime(2022, 3, 26, 20, 30)
        assert coerce(moment, DataType.DATE) == dt.date(2022, 3, 26)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("not a date", DataType.DATE)


class TestCoerceTime:
    def test_24h(self):
        assert coerce("20:30", DataType.TIME) == dt.time(20, 30)

    def test_am_pm(self):
        assert coerce("8:30 PM", DataType.TIME) == dt.time(20, 30)

    def test_time_passthrough(self):
        t = dt.time(9, 15)
        assert coerce(t, DataType.TIME) is t


class TestNull:
    @pytest.mark.parametrize("dtype", list(DataType))
    def test_none_passes_through(self, dtype):
        assert coerce(None, dtype) is None

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestRender:
    def test_none_is_unknown(self):
        assert render(None, DataType.TEXT) == "unknown"

    def test_bool_words(self):
        assert render(True, DataType.BOOLEAN) == "yes"
        assert render(False, DataType.BOOLEAN) == "no"

    def test_date_iso(self):
        assert render(dt.date(2022, 3, 26), DataType.DATE) == "2022-03-26"

    def test_time_hhmm(self):
        assert render(dt.time(20, 30), DataType.TIME) == "20:30"

    def test_float_compact(self):
        assert render(8.5, DataType.FLOAT) == "8.5"
        assert render(8.0, DataType.FLOAT) == "8"


class TestPythonType:
    @pytest.mark.parametrize(
        "dtype,expected",
        [
            (DataType.INTEGER, int),
            (DataType.FLOAT, float),
            (DataType.TEXT, str),
            (DataType.BOOLEAN, bool),
            (DataType.DATE, dt.date),
            (DataType.TIME, dt.time),
        ],
    )
    def test_mapping(self, dtype, expected):
        assert python_type(dtype) is expected
