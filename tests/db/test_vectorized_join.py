"""Differential tests for the vectorized (batched) join pipeline.

The batched executor narrows parallel slot lists through joins without
widening rows; these tests pin its output — rows, errors, and error
*order* — to the row-at-a-time path over a 500-query randomised
workload, plus the corners the fuzzer cannot reliably hit: NULL join
keys, TypeMismatch coercion semantics on cross-typed keys, empty build
sides, self-joins, the skew/pair-cap fallbacks, and the
aggregate-pushdown rewrite (join-below-aggregate must equal
aggregate-below-join, group for group).
"""

import random

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Query,
    TableSchema,
    and_,
    eq,
    ge,
    in_,
    le,
    ne,
    not_,
    or_,
)
from repro.db.aggregation import (
    aggregate,
    aggregate_query,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)
from repro.db.engine import execution_mode, render_plan
from repro.errors import DatabaseError


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "dim",
                [
                    Column("dim_id", DataType.INTEGER),
                    Column("label", DataType.TEXT),
                    Column("code", DataType.TEXT, unique=True),
                ],
                primary_key="dim_id",
            ),
            TableSchema(
                "void",
                [Column("void_id", DataType.INTEGER)],
                primary_key="void_id",
            ),
            TableSchema(
                "fact",
                [
                    Column("fact_id", DataType.INTEGER),
                    Column("dim_req", DataType.INTEGER, nullable=False),
                    Column("dim_opt", DataType.INTEGER),
                    Column("word", DataType.TEXT),
                    Column("val", DataType.FLOAT),
                    Column("qty", DataType.INTEGER, nullable=False),
                    Column("grp", DataType.TEXT),
                ],
                primary_key="fact_id",
                foreign_keys=[ForeignKey("dim_req", "dim", "dim_id")],
            ),
        ]
    )
    database = Database(schema)
    rng = random.Random(13)
    # "label" is heavily skewed towards one value (skew-guard food) and
    # "code" holds integer-looking text so cross-typed joins onto it
    # sometimes coerce and sometimes mismatch.
    for i in range(1, 11):
        database.insert(
            "dim",
            {
                "dim_id": i,
                "label": "common" if i <= 7 else f"label {i}",
                "code": str(i),
            },
        )
    words = ("3", "7", "oops", None, "5", "not a number")
    for i in range(1, 121):
        database.insert(
            "fact",
            {
                "fact_id": i,
                "dim_req": 1 + i % 10,
                "dim_opt": None if i % 7 == 0 else 1 + i % 14,
                "word": words[i % len(words)],
                "val": None if i % 11 == 0 else (-0.0 if i % 5 == 0
                                                 else float(i % 9)),
                "qty": i % 6,
                "grp": f"g{i % 4}",
            },
        )
    # Non-dense slots on both sides of the join.
    for rid in database.table("fact").lookup("fact_id", 60):
        database.delete("fact", rid)
    database.create_index("fact", "grp")
    database.create_index("fact", "dim_opt")
    return database


def _both_modes(fn):
    """Run ``fn`` in row then batch mode; errors become comparable values.

    Catches :class:`DatabaseError` (not just ``QueryError``): join-key
    coercion raises ``TypeMismatchError``, a *sibling* of QueryError.
    ``KeyError`` is included because an ORDER BY on a column the query
    never joined in raises it raw from the sort key, in both modes.
    """
    out = []
    for mode in ("row", "batch"):
        with execution_mode(mode):
            try:
                out.append(fn())
            except (DatabaseError, KeyError) as exc:
                out.append(("error", type(exc).__name__, str(exc)))
    return out


JOINS = (
    ("dim_opt", "dim", "dim_id"),     # indexed inner key, NULL probes
    ("dim_req", "dim", "dim_id"),     # NOT NULL FK (pushdown-elidable)
    ("word", "dim", "code"),          # TEXT = TEXT, unique inner key
    ("word", "dim", "dim_id"),        # TEXT -> INTEGER: coerce errors
    ("qty", "dim", "dim_id"),         # unindexed-probe-side hash join
    ("dim_opt", "void", "void_id"),   # empty build side
    ("fact_id", "fact", "fact_id"),   # self join
    ("word", "dim", "label"),         # skewed, unindexed inner key
)


class TestRandomisedJoinDifferential:
    def test_500_query_differential(self, db):
        rng = random.Random(29)
        predicates = [
            lambda: eq("grp", f"g{rng.randrange(5)}"),
            lambda: ne("grp", "g1"),
            lambda: ge("qty", rng.randrange(6)),
            lambda: le("val", float(rng.randrange(9))),
            lambda: in_("dim_opt", tuple(
                rng.randrange(1, 15) for __ in range(rng.randrange(1, 4))
            )),
            lambda: or_(eq("grp", "g2"), eq("qty", rng.randrange(6))),
            lambda: not_(eq("word", "3")),
            lambda: and_(ge("fact_id", rng.randrange(1, 90)),
                         le("fact_id", rng.randrange(30, 121))),
        ]
        order_columns = ("fact_id", "qty", "val", "grp", "dim.label",
                         "dim.code")
        checked = 0
        for __ in range(500):
            query = Query("fact")
            for __p in range(rng.randrange(0, 3)):
                query.where(rng.choice(predicates)())
            n_joins = rng.randrange(0, 3)
            for column, table, target in rng.sample(JOINS, n_joins):
                query.join(column, table, target)
            if rng.random() < 0.3:
                query.order_by(rng.choice(order_columns),
                               descending=rng.random() < 0.5)
            if rng.random() < 0.3:
                query.limit(rng.randrange(0, 15))
            if rng.random() < 0.15:
                query.select("fact_id", "grp")
            roll = rng.random()
            if roll < 0.2:
                runner = lambda: query.count(db)  # noqa: B023, E731
            elif roll < 0.45:
                aggs = {"n": count(),
                        "v": rng.choice((sum_, avg, min_, max_,
                                         count_distinct))("val")}
                group = rng.choice((None, ["grp"], ["dim_opt"],
                                    ["grp", "qty"]))
                runner = lambda: aggregate_query(  # noqa: B023, E731
                    db, query, aggs, group
                )
            else:
                runner = lambda: query.run(db)  # noqa: B023, E731
            row_result, batch_result = _both_modes(runner)
            assert row_result == batch_result
            checked += 1
        assert checked == 500


class TestJoinCorners:
    def test_null_probe_keys_never_match(self, db):
        query = Query("fact").join("dim_opt", "dim", "dim_id")
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert all(r["dim_opt"] is not None for r in batch_result)

    def test_empty_build_side_yields_no_rows(self, db):
        query = Query("fact").join("dim_opt", "void", "void_id")
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result == []

    def test_cross_type_join_raises_identically(self, db):
        # "oops" cannot coerce to INTEGER; the error (type and message)
        # must match the row path's per-probe coercion exactly.
        query = Query("fact").join("word", "dim", "dim_id")
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert row_result[0] == "error"
        assert row_result[1] == "TypeMismatchError"

    def test_coercible_cross_type_join_matches(self, db):
        # qty (INTEGER) joined against code (TEXT): every probe coerces
        # ("3" == str(3)), so results must match without errors.
        query = Query("fact").where(ge("qty", 1)).join("qty", "dim", "code")
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert len(batch_result) > 0
        assert all(r["dim.code"] == str(r["qty"]) for r in batch_result)

    def test_self_join_widens_with_prefixed_columns(self, db):
        query = Query("fact").where(eq("grp", "g2")) \
            .join("fact_id", "fact", "fact_id")
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert all(r["fact.fact_id"] == r["fact_id"] for r in batch_result)

    def test_limit_over_join_stays_lazy(self, db):
        # The first fact row's word ("7") probes cleanly; the second
        # ("oops") would raise.  The row path's islice stops after one
        # row and never reaches it — the batch path must not evaluate
        # the join eagerly and surface it.
        query = Query("fact").join("word", "dim", "dim_id").limit(1)
        row_result, batch_result = _both_modes(lambda: query.run(db))
        assert row_result == batch_result
        assert row_result != [] and row_result[0] != "error"

    def test_capped_count_over_join_stays_lazy(self, db):
        query = Query("fact").join("word", "dim", "dim_id").limit(1)
        row_result, batch_result = _both_modes(lambda: query.count(db))
        assert row_result == batch_result == 1

    def test_skew_guard_falls_back_to_row_path(self, db):
        from repro.db.engine import executor

        query = Query("fact").join("word", "dim", "label")
        expected = _both_modes(lambda: query.run(db))
        assert expected[0] == expected[1]
        original = executor._JOIN_SKEW_MIN
        executor._JOIN_SKEW_MIN = 1  # "common" dominates dim.label
        try:
            with execution_mode("batch"):
                assert query.run(db) == expected[0]
        finally:
            executor._JOIN_SKEW_MIN = original

    def test_pair_cap_falls_back_to_row_path(self, db):
        from repro.db.engine import executor

        query = Query("fact").join("word", "dim", "label")
        expected = _both_modes(lambda: query.run(db))
        assert expected[0] == expected[1]
        saved = executor._JOIN_PAIR_FLOOR, executor._JOIN_PAIR_FACTOR
        executor._JOIN_PAIR_FLOOR, executor._JOIN_PAIR_FACTOR = 1, 0
        try:
            with execution_mode("batch"):
                assert query.run(db) == expected[0]
        finally:
            executor._JOIN_PAIR_FLOOR, executor._JOIN_PAIR_FACTOR = saved


class TestAggregatePushdownParity:
    """Join-below-aggregate (naive) == aggregate-below-join (rewrite)."""

    def _check(self, db, joins, aggs, group):
        query = Query("fact")
        baseline_query = Query("fact")
        for column, table, target in joins:
            query.join(column, table, target)
            baseline_query.join(column, table, target)
        baseline = aggregate(baseline_query.run(db), aggs, group)
        row_result, batch_result = _both_modes(
            lambda: aggregate_query(db, query, aggs, group)
        )
        assert row_result == batch_result == baseline

    @staticmethod
    def _agg_plan(db, query, aggs, group):
        from dataclasses import replace

        from repro.db.aggregation import _engine_exprs

        exprs = _engine_exprs(aggs)
        assert exprs is not None
        spec = replace(
            query.compile(), aggregates=exprs, group_by=tuple(group or ())
        )
        return render_plan(db.plan_cache.plan(spec))

    def test_fk_join_elided(self, db):
        joins = [("dim_req", "dim", "dim_id")]
        aggs = {"n": count(), "v": sum_("val")}
        self._check(db, joins, aggs, ["grp"])
        plan = self._agg_plan(
            db, Query("fact").join("dim_req", "dim", "dim_id"), aggs, ["grp"]
        )
        assert "[join dim elided by fk]" in plan
        assert "HashJoin" not in plan and "IndexNestedLoopJoin" not in plan

    def test_semi_join_drops_unmatched_groups(self, db):
        # dim_opt reaches 1..14 but dim only holds 1..10: the join drops
        # the groups beyond 10 and the NULL group.
        joins = [("dim_opt", "dim", "dim_id")]
        self._check(db, joins, {"n": count()}, ["dim_opt"])

    def test_semi_join_against_empty_table_drops_everything(self, db):
        joins = [("dim_opt", "void", "void_id")]
        self._check(db, joins, {"n": count(), "v": min_("val")}, ["dim_opt"])

    def test_elision_and_semi_combine(self, db):
        joins = [("dim_req", "dim", "dim_id"), ("dim_opt", "dim", "dim_id")]
        self._check(
            db, joins, {"n": count(), "v": max_("val")}, ["dim_opt"]
        )

    def test_prefixed_group_key_keeps_the_join(self, db):
        # Grouping on the joined table's column cannot push down; the
        # plan keeps the join and the results still agree everywhere.
        joins = [("dim_req", "dim", "dim_id")]
        self._check(db, joins, {"n": count()}, ["dim.label"])

    def test_float_aggregates_preserve_reduction_order(self, db):
        # val holds -0.0s: sum/min are order-sensitive at the sign-of-
        # zero level, so bucket iteration must reduce in scan order.
        self._check(db, [], {"s": sum_("val"), "lo": min_("val")}, ["grp"])

    def test_whole_table_group_by_uses_index_buckets(self, db):
        plan = self._agg_plan(db, Query("fact"), {"n": count()}, ["grp"])
        assert "IndexGroupedAggScan on fact" in plan
        assert "group by [grp]" in plan
        self._check(db, [], {"n": count(), "v": avg("val")}, ["grp"])

    def test_semi_join_explain_shows_group_probe(self, db):
        plan = self._agg_plan(
            db, Query("fact").join("dim_opt", "dim", "dim_id"),
            {"n": count()}, ["dim_opt"],
        )
        assert "GroupSemiJoin dim on dim_opt = dim.dim_id" in plan
        assert "HashJoin" not in plan and "IndexNestedLoopJoin" not in plan

    def test_group_key_with_nulls_falls_back_at_runtime(self, db):
        # dim_opt is indexed but holds NULLs: the bucket walk cannot see
        # the NULL group, so execution falls back to the banked scan —
        # results must still contain the NULL group.
        result = aggregate_query(db, Query("fact"), {"n": count()},
                                 ["dim_opt"])
        assert any(r["dim_opt"] is None for r in result)
        self._check(db, [], {"n": count()}, ["dim_opt"])
