"""MVCC snapshot isolation: deterministic semantics + randomised stress.

The deterministic half pins the visibility rules one by one (pinned
readers never see uncommitted or later-committed state, writers see
their own writes, vacuum respects pins).  The stress half runs writer
threads committing multi-statement transactions against reader threads
scanning, joining and aggregating under pins — every reader result must
be internally consistent with a single generation (the per-account
balance always equals the sum of its live ledger deltas), which is
exactly what a torn read would break.
"""

import random
import threading

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    TableSchema,
    api,
)
from repro.db.aggregation import sum_
from repro.db.locks import LockUpgradeError
from repro.errors import ProcedureError


def _bank_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            TableSchema(
                "account",
                [
                    Column("account_id", DataType.INTEGER),
                    Column("balance", DataType.INTEGER, nullable=False),
                    Column("group_id", DataType.TEXT),
                ],
                primary_key="account_id",
            ),
            TableSchema(
                "ledger",
                [
                    Column("entry_id", DataType.INTEGER),
                    Column("account_id", DataType.INTEGER, nullable=False),
                    Column("delta", DataType.INTEGER, nullable=False),
                ],
                primary_key="entry_id",
                foreign_keys=[
                    ForeignKey("account_id", "account", "account_id")
                ],
            ),
        ]
    )


@pytest.fixture()
def db():
    database = Database(_bank_schema())
    for account_id in range(1, 5):
        database.insert(
            "account",
            {
                "account_id": account_id,
                "balance": 0,
                "group_id": f"g{account_id % 2}",
            },
        )
    return database


def _on_thread(fn):
    """Run ``fn`` to completion on another thread (a concurrent writer:
    same-thread commits deliberately refresh the thread's own pin)."""
    box = {}

    def runner():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]
    return box.get("value")


class TestSnapshotVisibility:
    def test_pinned_reader_misses_later_commit(self, db):
        with db.read_locked():
            before = db.count("account")
            _on_thread(
                lambda: db.insert(
                    "account",
                    {"account_id": 99, "balance": 7, "group_id": "g9"},
                )
            )
            assert db.count("account") == before
            assert db.table("account").lookup("account_id", 99) == []
        # A fresh pin observes the commit.
        with db.read_locked():
            assert db.count("account") == before + 1

    def test_pinned_reader_misses_uncommitted_transaction(self, db):
        db.transactions.begin()
        db.insert(
            "account", {"account_id": 50, "balance": 1, "group_id": "gx"}
        )
        done = {}

        def read():
            with db.read_locked():
                done["count"] = db.count("account")
                done["lookup"] = db.table("account").lookup(
                    "account_id", 50
                )

        thread = threading.Thread(target=read)
        thread.start()
        thread.join()
        db.transactions.commit()
        assert done["count"] == 4
        assert done["lookup"] == []
        with db.read_locked():
            assert db.count("account") == 5

    def test_writer_sees_own_uncommitted_writes(self, db):
        conn = db.connect()
        with db.read_locked():
            with conn.transaction():
                db.insert(
                    "account",
                    {"account_id": 60, "balance": 2, "group_id": "gy"},
                )
                # Inside the commit latch, reads resolve current state.
                assert db.count("account") == 5
                assert len(db.table("account").lookup("account_id", 60)) == 1
            # The commit refreshed this thread's pin.
            assert db.count("account") == 5

    def test_rollback_leaves_no_trace(self, db):
        db.transactions.begin()
        db.insert(
            "account", {"account_id": 70, "balance": 3, "group_id": "gz"}
        )
        rid = db.table("account").lookup("account_id", 1)[0]
        db.update("account", rid, {"balance": 41})
        db.transactions.rollback()
        with db.read_locked():
            assert db.count("account") == 4
            assert db.table("account").get(rid)["balance"] == 0
        # Rolled-back versions are vacuumed, not leaked.
        assert db.table("account")._dead == set()

    def test_pinned_reader_survives_delete_and_vacuum(self, db):
        rid = db.table("account").lookup("account_id", 4)[0]
        with db.read_locked():
            _on_thread(lambda: db.delete("account", rid))
            # Our pin predates the delete: the row is still visible.
            assert db.table("account").get(rid)["account_id"] == 4
            assert db.count("account") == 4
        # Pin released: the idle hook reclaimed the tombstone.
        assert db.table("account")._dead == set()
        with db.read_locked():
            assert db.count("account") == 3

    def test_update_versions_do_not_tear_for_pinned_reader(self, db):
        rid = db.table("account").lookup("account_id", 2)[0]
        with db.read_locked():
            _on_thread(
                lambda: db.update(
                    "account", rid, {"balance": 123, "group_id": "new"}
                )
            )
            row = db.table("account").get(rid)
            # The pinned snapshot reads the whole old version.
            assert (row["balance"], row["group_id"]) == (0, "g0")
        with db.read_locked():
            row = db.table("account").get(rid)
            assert (row["balance"], row["group_id"]) == (123, "new")

    def test_read_only_pin_refuses_writes(self, db):
        with db.read_locked(read_only=True):
            with pytest.raises(LockUpgradeError):
                db.insert(
                    "account",
                    {"account_id": 80, "balance": 0, "group_id": "g"},
                )

    def test_read_only_procedure_refusal_still_maps_to_procedure_error(
        self, db
    ):
        from repro.db.procedures import Procedure

        def sneaky(database):
            database.insert(
                "account", {"account_id": 81, "balance": 0, "group_id": "g"}
            )

        db.procedures.register(Procedure("sneaky", [], sneaky, writes=()))
        with pytest.raises(ProcedureError, match="declared read-only"):
            db.procedures.call("sneaky")

    def test_snapshot_version_tracks_pin(self, db):
        base = db.snapshot_version()
        with db.read_locked():
            pinned = db.snapshot_version()
            _on_thread(
                lambda: db.insert(
                    "account",
                    {"account_id": 90, "balance": 0, "group_id": "g"},
                )
            )
            assert db.snapshot_version() == pinned
        assert db.snapshot_version() == base + 1

    def test_ordered_index_snapshot(self, db):
        db.create_ordered_index("account", "balance")
        rid = db.table("account").lookup("account_id", 1)[0]
        with db.read_locked():
            handle = db.table("account").ordered_index("balance")
            assert len(handle.range_ids(low=100)) == 0
            _on_thread(
                lambda: db.update("account", rid, {"balance": 500})
            )
            # The live index moved; our snapshot-built one did not.
            assert len(handle.range_ids(low=100)) == 0
        with db.read_locked():
            handle = db.table("account").ordered_index("balance")
            assert handle.range_ids(low=100) == [rid]


class TestConcurrentStress:
    """Writers commit transfers while readers verify the invariant."""

    N_ACCOUNTS = 4
    N_WRITERS = 2
    N_READERS = 3
    WRITER_OPS = 120
    READER_OPS = 60

    def _writer(self, db, seed, errors):
        rng = random.Random(seed)
        conn = db.connect(name=f"writer-{seed}")
        ledger = db.table("ledger")
        account = db.table("account")
        next_entry = seed * 1_000_000
        try:
            for __ in range(self.WRITER_OPS):
                account_id = rng.randrange(1, self.N_ACCOUNTS + 1)
                rid = account.lookup("account_id", account_id)[0]
                roll = rng.random()
                try:
                    with conn.transaction():
                        if roll < 0.65:
                            # Append an entry and fold it into balance.
                            next_entry += 1
                            delta = rng.randrange(-20, 21)
                            db.insert(
                                "ledger",
                                {
                                    "entry_id": next_entry,
                                    "account_id": account_id,
                                    "delta": delta,
                                },
                            )
                            balance = account.get(rid)["balance"]
                            db.update(
                                "account", rid, {"balance": balance + delta}
                            )
                        else:
                            # Retract this account's newest entry.
                            entries = ledger.lookup(
                                "account_id", account_id
                            )
                            if entries:
                                entry_rid = entries[-1]
                                entry = ledger.get(entry_rid)
                                db.delete("ledger", entry_rid)
                                balance = account.get(rid)["balance"]
                                db.update(
                                    "account",
                                    rid,
                                    {"balance": balance - entry["delta"]},
                                )
                        if rng.random() < 0.1:
                            # Deliberate mid-transaction failure: the
                            # rollback must erase the half-applied pair.
                            raise KeyError("injected abort")
                except KeyError:
                    pass
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(f"writer-{seed}: {exc!r}")

    def _reader(self, db, seed, errors):
        rng = random.Random(seed)
        conn = db.connect(name=f"reader-{seed}")
        stmt = conn.prepare(
            api.aggregate("ledger", total=sum_("delta")).group_by(
                "account_id"
            )
        )
        try:
            for __ in range(self.READER_OPS):
                with conn.reading():
                    # Frozen copy: both tables materialised inside one
                    # pin must balance exactly.
                    accounts = db.rows("account")
                    entries = db.rows("ledger")
                    sums: dict[int, int] = {}
                    for entry in entries:
                        sums[entry["account_id"]] = (
                            sums.get(entry["account_id"], 0)
                            + entry["delta"]
                        )
                    for row in accounts:
                        expected = sums.get(row["account_id"], 0)
                        if row["balance"] != expected:
                            errors.append(
                                f"reader-{seed}: account "
                                f"{row['account_id']} balance "
                                f"{row['balance']} != ledger sum "
                                f"{expected}"
                            )
                            return
                    # The engine's grouped aggregate (same pin) must
                    # agree with the frozen copy.
                    engine_sums = {
                        row["account_id"]: row["total"]
                        for row in stmt.execute().all()
                    }
                    if engine_sums != {k: v for k, v in sums.items()}:
                        errors.append(
                            f"reader-{seed}: engine aggregate "
                            f"{engine_sums} != frozen {sums}"
                        )
                        return
                if rng.random() < 0.2:
                    # Vary interleaving a little.
                    threading.Event().wait(0.0005)
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(f"reader-{seed}: {exc!r}")

    def test_randomised_snapshot_isolation(self, db):
        errors: list[str] = []
        writers = [
            threading.Thread(target=self._writer, args=(db, i + 1, errors))
            for i in range(self.N_WRITERS)
        ]
        readers = [
            threading.Thread(
                target=self._reader, args=(db, 100 + i, errors)
            )
            for i in range(self.N_READERS)
        ]
        for thread in writers + readers:
            thread.start()
        for thread in writers + readers:
            thread.join(timeout=120)
        assert not errors, errors[:5]
        # Quiesced: the final state must balance too, and every dead
        # version must have been reclaimed once the last pin drained.
        with db.read_locked():
            accounts = db.rows("account")
            entries = db.rows("ledger")
        sums: dict[int, int] = {}
        for entry in entries:
            sums[entry["account_id"]] = (
                sums.get(entry["account_id"], 0) + entry["delta"]
            )
        for row in accounts:
            assert row["balance"] == sums.get(row["account_id"], 0)
        db._vacuum_all()
        assert db.table("ledger")._dead == set()
        assert db.table("account")._dead == set()
