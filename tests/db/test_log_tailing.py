"""Concurrent log-tailing stress: a committing writer, racing readers.

The replication contract the appliers rely on: however the reader's
polling interleaves with the writer's commits, a tailed batch never
contains a torn record (partially written ops), never reorders or
repeats an LSN, and the advance floor never runs ahead of what was
actually committed.  The raw on-disk tail gives the same guarantee
through :func:`read_delta_records` — a concurrent read observes a clean
committed prefix, possibly cut at the record the writer is mid-append.
"""

import os
import random
import threading

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
    dump_incremental,
)
from repro.db.persistence import DELTA_LOG_NAME
from repro.db.segments import read_delta_records
from repro.replication import ReplicationLog


def _make_db() -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "event",
                [
                    Column("event_id", DataType.INTEGER),
                    Column("payload", DataType.TEXT),
                ],
                primary_key="event_id",
            )
        ]
    )
    return Database(schema)


class _Writer(threading.Thread):
    """Commits single-insert transactions as fast as it can."""

    def __init__(self, database: Database, count: int) -> None:
        super().__init__(name="tailing-writer", daemon=True)
        self._database = database
        self.count = count

    def run(self) -> None:
        for i in range(1, self.count + 1):
            self._database.insert(
                "event", {"event_id": i, "payload": f"p{i}"}
            )


def _assert_prefix_sound(records: list, seen_ids: list[int]) -> None:
    """Ops carry the contiguous event ids 1..n, in order, no tears."""
    for record in records:
        for op in record.ops:
            kind, table, row_id, values = op
            assert kind == "insert"
            assert table == "event"
            assert values["payload"] == f"p{values['event_id']}"
            seen_ids.append(values["event_id"])
    assert seen_ids == list(range(1, len(seen_ids) + 1))


@pytest.mark.parametrize("ring_capacity", [4096, 7])
def test_randomized_concurrent_tailing(tmp_path, ring_capacity):
    """Random-limit tailing while the writer streams commits.

    The tiny-ring variant forces the reader through the on-disk
    fallback (ring overrun) mid-stress; the guarantees must hold on
    both paths.
    """
    rng = random.Random(1234)
    database = _make_db()
    dump_incremental(database, str(tmp_path / "snap"))
    log = ReplicationLog.install(database, capacity=ring_capacity)
    writer = _Writer(database, count=400)

    lsns: list[int] = []
    ids: list[int] = []
    applied = database.data_version
    writer.start()
    while True:
        # Sampled before the read: a writer already dead here has every
        # commit visible to the read, so an empty batch means drained.
        writer_done = not writer.is_alive()
        batch = log.records_since(applied, limit=rng.randint(1, 17))
        assert batch is not None  # the disk tail always reaches back
        records, floor = batch
        for record in records:
            assert record.lsn > applied
            lsns.append(record.lsn)
        assert floor >= applied
        assert floor <= log.last_lsn
        _assert_prefix_sound(records, ids)
        if records:
            applied = max(applied, records[-1].lsn)
        elif floor > applied:
            applied = floor
        elif writer_done:
            break
    writer.join()

    # Drained: every commit was seen exactly once, in commit order.
    assert ids == list(range(1, writer.count + 1))
    assert lsns == sorted(lsns)
    assert len(lsns) == len(set(lsns))
    assert applied == log.last_lsn


def test_raw_disk_tail_reads_stay_clean_under_append(tmp_path):
    """read_delta_records racing the appender: a clean committed prefix
    (or a cut flagged not-clean), never an exception, never disorder."""
    database = _make_db()
    directory = str(tmp_path / "snap")
    dump_incremental(database, directory)
    log_path = os.path.join(directory, DELTA_LOG_NAME)
    writer = _Writer(database, count=300)
    writer.start()
    reads = 0
    while writer.is_alive() or reads == 0:
        records, clean = read_delta_records(log_path)
        reads += 1
        generations = [r["generation"] for r in records]
        assert generations == sorted(generations)
        assert len(generations) == len(set(generations))
        ids = [op[3]["event_id"] for r in records for op in r["ops"]]
        assert ids == list(range(1, len(ids) + 1))
    writer.join()
    records, clean = read_delta_records(log_path)
    assert clean
    assert len(records) == writer.count
