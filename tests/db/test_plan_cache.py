"""Tests for the prepared-plan cache: sharing, invalidation, threads."""

import datetime as dt
import threading

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    Query,
    TableSchema,
    and_,
    eq,
    ge,
    gt,
    in_,
    le,
)
from repro.db.engine import (
    bind_plan,
    fingerprint_spec,
    parameterize_spec,
    plan_query,
    render_plan,
)


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "screening",
                [
                    Column("screening_id", DataType.INTEGER),
                    Column("movie_id", DataType.INTEGER),
                    Column("date", DataType.DATE),
                    Column("price", DataType.FLOAT),
                    Column("room", DataType.TEXT),
                ],
                primary_key="screening_id",
            )
        ]
    )
    database = Database(schema)
    base = dt.date(2022, 3, 26)
    for i in range(1, 41):
        database.insert(
            "screening",
            {
                "screening_id": i,
                "movie_id": (i % 8) + 1,
                "date": base + dt.timedelta(days=i % 10),
                "price": 8.0 + (i % 5),
                "room": f"room {chr(ord('A') + i % 3)}",
            },
        )
    database.create_index("screening", "movie_id")
    database.create_ordered_index("screening", "date")
    return database


class TestTemplateSharing:
    def test_same_shape_different_constants_hits(self, db):
        cache = db.plan_cache
        misses_before = cache.misses
        for movie_id in range(1, 9):
            rows = Query("screening").where(eq("movie_id", movie_id)).run(db)
            assert all(r["movie_id"] == movie_id for r in rows)
        assert cache.misses - misses_before == 1
        assert cache.hits >= 7

    def test_bound_plan_matches_direct_planning(self, db):
        spec = Query("screening").where(
            and_(ge("date", dt.date(2022, 3, 28)),
                 le("date", dt.date(2022, 3, 30)))
        ).compile()
        cached = db.plan_cache.plan(spec)
        direct = plan_query(db, spec)
        assert render_plan(cached) == render_plan(direct)

    def test_cached_results_equal_uncached(self, db):
        query = Query("screening").where(ge("price", 10.0)).order_by("date")
        spec = query.compile()
        from repro.db.engine import execute_rows

        assert execute_rows(db, db.plan_cache.plan(spec)) == execute_rows(
            db, plan_query(db, spec)
        )

    def test_in_list_constants_share_template(self, db):
        cache = db.plan_cache
        misses_before = cache.misses
        a = Query("screening").where(in_("movie_id", (1, 2))).run(db)
        b = Query("screening").where(in_("movie_id", (3, 4, 5))).run(db)
        assert cache.misses - misses_before == 1
        assert {r["movie_id"] for r in a} <= {1, 2}
        assert {r["movie_id"] for r in b} <= {3, 4, 5}


class TestFingerprints:
    def test_different_shapes_do_not_collide(self, db):
        specs = [
            Query("screening").where(eq("movie_id", 3)).compile(),
            Query("screening").where(ge("movie_id", 3)).compile(),
            Query("screening").where(eq("screening_id", 3)).compile(),
            Query("screening").where(eq("movie_id", 3)).compile(count_only=True),
            Query("screening").where(eq("movie_id", 3)).limit(2).compile(),
            Query("screening").where(in_("movie_id", (3,))).compile(),
        ]
        fingerprints = [fingerprint_spec(s)[0] for s in specs]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_same_shape_same_fingerprint(self, db):
        a = Query("screening").where(eq("movie_id", 1)).compile()
        b = Query("screening").where(eq("movie_id", 999)).compile()
        assert fingerprint_spec(a)[0] == fingerprint_spec(b)[0]
        assert fingerprint_spec(a)[1] == (1,)
        assert fingerprint_spec(b)[1] == (999,)

    def test_value_dependent_shape_is_uncacheable(self, db):
        spec = Query("screening").where(
            and_(gt("price", 8.0), ge("price", 9.0))
        ).compile()
        fingerprint, params = fingerprint_spec(spec)
        assert fingerprint is None and params == ()
        bypasses_before = db.plan_cache.bypasses
        rows = Query("screening").where(
            and_(gt("price", 8.0), ge("price", 9.0))
        ).run(db)
        assert db.plan_cache.bypasses == bypasses_before + 1
        assert all(r["price"] >= 9.0 for r in rows)

    def test_parameterize_and_bind_round_trip(self, db):
        spec = Query("screening").where(
            and_(eq("movie_id", 5), ge("date", dt.date(2022, 3, 28)))
        ).compile()
        shape, params = parameterize_spec(spec)
        template = plan_query(db, shape, params=params)
        bound = bind_plan(db, template, params)
        assert render_plan(bound) == render_plan(plan_query(db, spec))


class TestRepeatedTurns:
    def test_turn_workload_hit_rate_above_90_percent(self, db):
        """The serving shapes, replayed with fresh constants each turn."""
        cache = db.plan_cache
        hits_before, misses_before = cache.hits, cache.misses
        for turn in range(50):
            movie_id = turn % 8 + 1
            day = dt.date(2022, 3, 26) + dt.timedelta(days=turn % 10)
            Query("screening").where(eq("movie_id", movie_id)).run(db)
            Query("screening").where(eq("movie_id", movie_id)).count(db)
            Query("screening").where(
                and_(ge("date", day), le("date", day + dt.timedelta(days=1)))
            ).run(db)
        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        assert hits / (hits + misses) > 0.9


class TestInvalidation:
    def test_insert_invalidates_template(self, db):
        query = Query("screening").where(eq("movie_id", 1))
        before = query.count(db)
        misses_before = db.plan_cache.misses
        db.insert(
            "screening",
            {"screening_id": 99, "movie_id": 1, "date": dt.date(2022, 4, 9),
             "price": 9.0, "room": "room A"},
        )
        assert query.count(db) == before + 1
        assert db.plan_cache.misses > misses_before  # recompiled

    def test_update_and_delete_keep_results_fresh(self, db):
        query = Query("screening").where(eq("movie_id", 2))
        baseline_ids = {r["screening_id"] for r in query.run(db)}
        victim = sorted(baseline_ids)[0]
        rid = db.table("screening").lookup("screening_id", victim)[0]
        db.update("screening", rid, {"movie_id": 3})
        after_update = {r["screening_id"] for r in query.run(db)}
        assert after_update == baseline_ids - {victim}
        rid2 = db.table("screening").lookup(
            "screening_id", sorted(after_update)[0]
        )[0]
        db.delete("screening", rid2)
        after_delete = {r["screening_id"] for r in query.run(db)}
        assert after_delete == after_update - {sorted(after_update)[0]}

    def test_create_index_invalidates_cached_templates(self, db):
        # Cache a SeqScan template, then add the index: the next plan
        # of the same shape must recompile and use the probe.
        query = Query("screening").where(eq("room", "room A"))
        assert "SeqScan" in query.explain(db)
        db.create_index("screening", "room")
        explained = query.explain(db)
        assert "IndexEq on screening using room" in explained
        assert "SeqScan" not in explained

    def test_create_ordered_index_invalidates_cached_templates(self, db):
        query = Query("screening").where(ge("price", 10.0))
        assert "SeqScan" in query.explain(db)
        db.create_ordered_index("screening", "price")
        assert "IndexRange on screening using price" in query.explain(db)

    def test_unbindable_constant_falls_back(self, db):
        # Compile the template with a proper date, then reuse the shape
        # with a string that cannot coerce to DATE: the cache must fall
        # back to direct planning and reproduce scan semantics.
        good = Query("screening").where(ge("date", dt.date(2022, 3, 28)))
        good_rows = good.run(db)
        assert good_rows
        bad = Query("screening").where(ge("date", "not a date"))
        assert bad.run(db) == []  # comparison semantics: nothing matches


class TestThreadSafety:
    def test_sixteen_threads_share_the_cache(self, db):
        errors: list[Exception] = []
        barrier = threading.Barrier(16)

        def worker(seed: int) -> None:
            try:
                barrier.wait(timeout=10)
                for i in range(40):
                    movie_id = (seed + i) % 8 + 1
                    rows = Query("screening").where(
                        eq("movie_id", movie_id)
                    ).run(db)
                    assert all(r["movie_id"] == movie_id for r in rows)
                    n = Query("screening").where(
                        ge("price", 8.0 + (i % 5))
                    ).count(db)
                    assert n >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        cache = db.plan_cache
        assert cache.hits + cache.misses >= 16 * 80

    def test_reader_threads_with_concurrent_writer(self, db):
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for i in range(30):
                    db.insert(
                        "screening",
                        {"screening_id": 1000 + i, "movie_id": (i % 8) + 1,
                         "date": dt.date(2022, 5, 1), "price": 10.0,
                         "room": "room W"},
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    rows = Query("screening").where(eq("movie_id", 3)).run(db)
                    assert all(r["movie_id"] == 3 for r in rows)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # After the writer finishes, cached plans serve the final state.
        final = Query("screening").where(eq("movie_id", 3)).run(db)
        direct = [
            r for r in db.rows("screening") if r["movie_id"] == 3
        ]
        assert len(final) == len(direct)


class TestLRUBound:
    def test_eviction_beyond_cap(self, db):
        from repro.db.engine import PlanCache

        cache = PlanCache(db, max_entries=4)
        for i in range(6):
            # One distinct shape per projection column set.
            cache.plan(Query("screening").select(f"c{i}").compile())
        assert len(cache) == 4
        assert cache.evictions == 2

    def test_hit_refreshes_recency(self, db):
        from repro.db.engine import PlanCache

        cache = PlanCache(db, max_entries=2)
        a = Query("screening").select("room").compile()
        b = Query("screening").select("price").compile()
        c = Query("screening").select("date").compile()
        cache.plan(a)
        cache.plan(b)
        cache.plan(a)        # touch a: b is now the LRU entry
        cache.plan(c)        # evicts b, not a
        misses = cache.misses
        cache.plan(a)
        assert cache.misses == misses  # still cached
        cache.plan(b)
        assert cache.misses == misses + 1  # was evicted, recompiles

    def test_evicted_shape_recompiles_correctly(self, db):
        from repro.db.engine import PlanCache

        cache = PlanCache(db, max_entries=1)
        q1 = Query("screening").where(eq("movie_id", 3))
        q2 = Query("screening").where(ge("price", 9.0))
        plan1 = cache.plan(q1.compile())
        cache.plan(q2.compile())
        plan1_again = cache.plan(q1.compile())
        assert plan1_again == plan1
        assert cache.evictions >= 1

    def test_default_cache_is_bounded(self, db):
        from repro.db.engine import DEFAULT_MAX_ENTRIES

        assert DEFAULT_MAX_ENTRIES >= 64
        # The database's shared cache exposes the eviction counter.
        assert db.plan_cache.evictions == 0

    def test_invalidation_does_not_count_as_eviction(self, db):
        cache = db.plan_cache
        cache.plan(Query("screening").where(eq("movie_id", 1)).compile())
        before = cache.evictions
        cache.invalidate()
        assert cache.evictions == before
