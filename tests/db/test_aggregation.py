"""Tests for group-by aggregation."""

import pytest

from repro.db import (
    aggregate,
    avg,
    count,
    count_distinct,
    max_,
    min_,
    sum_,
)
from repro.errors import QueryError

ROWS = [
    {"screening_id": 1, "no_tickets": 2, "customer_id": 10},
    {"screening_id": 1, "no_tickets": 3, "customer_id": 11},
    {"screening_id": 2, "no_tickets": 1, "customer_id": 10},
    {"screening_id": 2, "no_tickets": None, "customer_id": 12},
]


class TestAggregate:
    def test_global_count(self):
        result = aggregate(ROWS, {"n": count()})
        assert result == [{"n": 4}]

    def test_group_by_sum(self):
        result = aggregate(ROWS, {"booked": sum_("no_tickets")},
                           group_by=["screening_id"])
        assert result == [
            {"screening_id": 1, "booked": 5},
            {"screening_id": 2, "booked": 1},
        ]

    def test_nulls_skipped(self):
        result = aggregate(ROWS, {"n": count(), "a": avg("no_tickets")},
                           group_by=["screening_id"])
        # count(*) counts the NULL row; avg skips it.
        assert result[1]["n"] == 2
        assert result[1]["a"] == 1.0

    def test_min_max(self):
        result = aggregate(ROWS, {"lo": min_("no_tickets"),
                                  "hi": max_("no_tickets")})
        assert result == [{"lo": 1, "hi": 3}]

    def test_count_distinct(self):
        result = aggregate(ROWS, {"customers": count_distinct("customer_id")})
        assert result == [{"customers": 3}]

    def test_empty_input_global_group(self):
        result = aggregate([], {"n": count(), "s": sum_("x"),
                                "a": avg("x")})
        assert result == [{"n": 0, "s": 0, "a": None}]

    def test_empty_input_group_by(self):
        assert aggregate([], {"n": count()}, group_by=["g"]) == []

    def test_group_order_is_first_appearance(self):
        rows = [{"g": "b"}, {"g": "a"}, {"g": "b"}]
        result = aggregate(rows, {"n": count()}, group_by=["g"])
        assert [r["g"] for r in result] == ["b", "a"]

    def test_multi_column_group(self):
        result = aggregate(ROWS, {"n": count()},
                           group_by=["screening_id", "customer_id"])
        assert len(result) == 4

    def test_no_aggregates_rejected(self):
        with pytest.raises(QueryError):
            aggregate(ROWS, {})

    def test_unknown_group_column_rejected(self):
        with pytest.raises(QueryError):
            aggregate(ROWS, {"n": count()}, group_by=["ghost"])
