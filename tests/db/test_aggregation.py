"""Tests for group-by aggregation (Python reducer and engine pushdown)."""

import random

import pytest

from repro.db import (
    Aggregate,
    Query,
    aggregate,
    aggregate_query,
    avg,
    count,
    count_distinct,
    eq,
    ge,
    in_,
    max_,
    min_,
    sum_,
)
from repro.errors import QueryError

ROWS = [
    {"screening_id": 1, "no_tickets": 2, "customer_id": 10},
    {"screening_id": 1, "no_tickets": 3, "customer_id": 11},
    {"screening_id": 2, "no_tickets": 1, "customer_id": 10},
    {"screening_id": 2, "no_tickets": None, "customer_id": 12},
]


class TestAggregate:
    def test_global_count(self):
        result = aggregate(ROWS, {"n": count()})
        assert result == [{"n": 4}]

    def test_group_by_sum(self):
        result = aggregate(ROWS, {"booked": sum_("no_tickets")},
                           group_by=["screening_id"])
        assert result == [
            {"screening_id": 1, "booked": 5},
            {"screening_id": 2, "booked": 1},
        ]

    def test_nulls_skipped(self):
        result = aggregate(ROWS, {"n": count(), "a": avg("no_tickets")},
                           group_by=["screening_id"])
        # count(*) counts the NULL row; avg skips it.
        assert result[1]["n"] == 2
        assert result[1]["a"] == 1.0

    def test_min_max(self):
        result = aggregate(ROWS, {"lo": min_("no_tickets"),
                                  "hi": max_("no_tickets")})
        assert result == [{"lo": 1, "hi": 3}]

    def test_count_distinct(self):
        result = aggregate(ROWS, {"customers": count_distinct("customer_id")})
        assert result == [{"customers": 3}]

    def test_empty_input_global_group(self):
        result = aggregate([], {"n": count(), "s": sum_("x"),
                                "a": avg("x")})
        assert result == [{"n": 0, "s": 0, "a": None}]

    def test_empty_input_group_by(self):
        assert aggregate([], {"n": count()}, group_by=["g"]) == []

    def test_group_order_is_first_appearance(self):
        rows = [{"g": "b"}, {"g": "a"}, {"g": "b"}]
        result = aggregate(rows, {"n": count()}, group_by=["g"])
        assert [r["g"] for r in result] == ["b", "a"]

    def test_multi_column_group(self):
        result = aggregate(ROWS, {"n": count()},
                           group_by=["screening_id", "customer_id"])
        assert len(result) == 4

    def test_no_aggregates_rejected(self):
        with pytest.raises(QueryError):
            aggregate(ROWS, {})

    def test_unknown_group_column_rejected(self):
        with pytest.raises(QueryError):
            aggregate(ROWS, {"n": count()}, group_by=["ghost"])


def _baseline(database, query, aggregates, group_by=None):
    """The pre-pushdown aggregate_query: materialise then reduce."""
    return aggregate(query.run(database), aggregates, group_by)


class TestAggregatePushdown:
    """aggregate_query must reproduce materialise-then-reduce exactly."""

    def _check(self, database, query, aggregates, group_by=None):
        expected = _baseline(database, query, aggregates, group_by)
        assert aggregate_query(database, query, aggregates, group_by) == expected
        return expected

    def test_grouped_sum(self, movie_db):
        database, __ = movie_db
        self._check(database, Query("reservation"),
                    {"booked": sum_("no_tickets")}, ["screening_id"])

    def test_grouped_count_and_avg(self, movie_db):
        database, __ = movie_db
        self._check(database, Query("screening"),
                    {"n": count(), "mean": avg("price")}, ["room"])

    def test_grouped_multi_key(self, movie_db):
        database, __ = movie_db
        self._check(database, Query("screening"),
                    {"n": count()}, ["movie_id", "room"])

    def test_whole_table_min_max_uses_index_agg_scan(self, movie_db):
        database, __ = movie_db
        from dataclasses import replace

        from repro.db.engine import AggExpr, render_plan

        aggregates = {"lo": min_("price"), "hi": max_("price")}
        self._check(database, Query("screening"), aggregates)
        spec = replace(
            Query("screening").compile(),
            aggregates=(AggExpr("lo", "min", "price"),
                        AggExpr("hi", "max", "price")),
        )
        assert "IndexAggScan" in render_plan(database.plan_cache.plan(spec))

    def test_count_distinct_from_hash_index(self, movie_db):
        database, __ = movie_db
        self._check(database, Query("screening"),
                    {"movies": count_distinct("movie_id")})

    def test_filtered_aggregate_streams(self, movie_db):
        database, __ = movie_db
        self._check(
            database,
            Query("reservation").where(ge("no_tickets", 3)),
            {"booked": sum_("no_tickets"), "n": count()},
            ["screening_id"],
        )

    def test_aggregate_over_join(self, movie_db):
        database, __ = movie_db
        self._check(
            database,
            Query("screening").join("movie_id", "movie", "movie_id"),
            {"n": count(), "first_year": min_("movie.year")},
            ["movie.genre"],
        )

    def test_aggregate_respects_limit(self, movie_db):
        database, __ = movie_db
        self._check(
            database,
            Query("reservation").order_by("no_tickets").limit(7),
            {"booked": sum_("no_tickets")},
        )

    def test_empty_result_grouped_and_global(self, movie_db):
        database, __ = movie_db
        nothing = Query("reservation").where(eq("screening_id", 999999))
        assert self._check(
            database, nothing, {"n": count()}, ["screening_id"]
        ) == []
        global_row = self._check(
            database, nothing,
            {"n": count(), "s": sum_("no_tickets"), "a": avg("no_tickets"),
             "lo": min_("no_tickets")},
        )
        assert global_row == [{"n": 0, "s": 0, "a": None, "lo": None}]

    def test_unknown_group_column_raises_like_baseline(self, movie_db):
        database, __ = movie_db
        with pytest.raises(QueryError):
            aggregate_query(database, Query("screening"), {"n": count()},
                            group_by=["ghost"])

    def test_custom_reducer_falls_back(self, movie_db):
        database, __ = movie_db
        median = Aggregate(
            "median", "no_tickets",
            lambda vs: sorted(vs)[len(vs) // 2] if vs else None,
        )
        query = Query("reservation")
        assert aggregate_query(database, query, {"m": median}) == \
            _baseline(database, query, {"m": median})

    def test_custom_reducer_named_like_builtin_is_not_pushed_down(
        self, movie_db
    ):
        database, __ = movie_db
        doubled = Aggregate("sum", "no_tickets",
                            lambda vs: sum(vs) * 2 if vs else 0)
        weird_count = Aggregate("count", None, lambda rows: len(rows) + 1)
        query = Query("reservation")
        assert aggregate_query(database, query, {"d": doubled}) == \
            _baseline(database, query, {"d": doubled})
        assert aggregate_query(database, query, {"c": weird_count}) == \
            _baseline(database, query, {"c": weird_count})

    def test_results_are_invalidated_by_mutation(self, movie_db):
        database, __ = movie_db
        query = Query("reservation").where(eq("screening_id", 1))
        aggregates = {"booked": sum_("no_tickets")}
        before = aggregate_query(database, query, aggregates)
        database.insert(
            "reservation",
            {"reservation_id": 9999, "customer_id": 1, "screening_id": 1,
             "no_tickets": 4},
        )
        after = aggregate_query(database, query, aggregates)
        assert after[0]["booked"] == before[0]["booked"] + 4

    def test_randomised_differential(self, movie_db):
        database, __ = movie_db
        rng = random.Random(41)
        kinds = [sum_, avg, min_, max_, count_distinct]
        numeric = ["price", "capacity", "movie_id"]
        group_candidates = ["room", "movie_id", "capacity"]
        for __i in range(200):
            query = Query("screening")
            shape = rng.randrange(4)
            if shape == 1:
                query.where(eq("movie_id", rng.randrange(1, 16)))
            elif shape == 2:
                query.where(ge("price", 7.0 + rng.randrange(10)))
            elif shape == 3:
                query.where(in_("movie_id", tuple(
                    rng.randrange(1, 16) for __j in range(rng.randrange(1, 5))
                )))
            aggregates = {"n": count()}
            for j in range(rng.randrange(0, 3)):
                aggregates[f"a{j}"] = rng.choice(kinds)(rng.choice(numeric))
            group_by = (
                rng.sample(group_candidates, rng.randrange(1, 3))
                if rng.random() < 0.6 else None
            )
            self._check(database, query, aggregates, group_by)


class TestHaving:
    """HAVING: the post-aggregate Filter over aggregate output rows."""

    def test_aggregate_having_filters_output(self):
        result = aggregate(ROWS, {"booked": sum_("no_tickets")},
                           group_by=["screening_id"],
                           having=ge("booked", 5))
        assert result == [{"screening_id": 1, "booked": 5}]

    def test_aggregate_query_having_matches_baseline(self, movie_db):
        database, __ = movie_db
        query = Query("reservation")
        aggregates = {"booked": sum_("no_tickets"), "n": count()}
        having = ge("booked", 6)
        expected = aggregate(query.run(database), aggregates,
                             ["screening_id"], having)
        actual = aggregate_query(database, query, aggregates,
                                 ["screening_id"], having=having)
        assert actual == expected
        assert actual  # the cinema workload has busy screenings
        assert all(row["booked"] >= 6 for row in actual)

    def test_having_on_group_key(self, movie_db):
        database, __ = movie_db
        actual = aggregate_query(
            database, Query("screening"), {"n": count()}, ["movie_id"],
            having=eq("movie_id", 3),
        )
        assert [row["movie_id"] for row in actual] == [3]

    def test_having_explain_shows_post_aggregate_filter(self, movie_db):
        from dataclasses import replace

        from repro.db.engine import AggExpr, render_plan

        database, __ = movie_db
        spec = replace(
            Query("reservation").compile(),
            aggregates=(AggExpr("booked", "sum", "no_tickets"),),
            group_by=("screening_id",),
            having=ge("booked", 6),
        )
        plan = render_plan(database.plan_cache.plan(spec))
        lines = plan.splitlines()
        assert lines[0].startswith("Filter booked >= 6")
        # A whole-table single-key group-by roots in the bucket-walking
        # IndexGroupedAggScan; the HAVING filter still sits above it.
        assert "IndexGroupedAggScan" in lines[1]
        assert "group by [screening_id]" in lines[1]

    def test_having_over_index_agg_scan(self, movie_db):
        database, __ = movie_db
        aggregates = {"lo": min_("price"), "hi": max_("price")}
        kept = aggregate_query(database, Query("screening"), aggregates,
                               having=ge("hi", 0.0))
        dropped = aggregate_query(database, Query("screening"), aggregates,
                                  having=ge("hi", 1e9))
        assert len(kept) == 1 and dropped == []

    def test_having_count_star_does_not_short_circuit(self, movie_db):
        database, __ = movie_db
        n = database.count("screening")
        assert aggregate_query(database, Query("screening"), {"n": count()},
                               having=ge("n", n)) == [{"n": n}]
        assert aggregate_query(database, Query("screening"), {"n": count()},
                               having=ge("n", n + 1)) == []

    def test_having_templates_bind_fresh_constants(self, movie_db):
        database, __ = movie_db
        cache = database.plan_cache
        query = Query("reservation")
        aggregates = {"booked": sum_("no_tickets")}

        def run(threshold):
            return aggregate_query(database, query, aggregates,
                                   ["screening_id"],
                                   having=ge("booked", threshold))

        baseline = {
            t: aggregate(query.run(database), aggregates,
                         ["screening_id"], ge("booked", t))
            for t in (2, 5, 9)
        }
        run(2)
        misses = cache.misses
        for t in (5, 9):
            assert run(t) == baseline[t]
        # Same shape, different HAVING constants: no recompilation.
        assert cache.misses == misses

    def test_custom_reducer_fallback_applies_having(self, movie_db):
        database, __ = movie_db
        spread = Aggregate(
            "spread", "no_tickets",
            lambda vs: (max(vs) - min(vs)) if vs else None,
        )
        actual = aggregate_query(
            database, Query("reservation"), {"spread": spread},
            ["screening_id"], having=ge("spread", 1),
        )
        expected = aggregate(
            Query("reservation").run(database), {"spread": spread},
            ["screening_id"], ge("spread", 1),
        )
        assert actual == expected
