"""Tests for sealed-segment storage: delta banks, compaction, memos.

Covers the table-level seal/delta lifecycle, the two-part grouped
reduce and its parity with a flat rebuild, cache retention across
writes, the vacuum memo-invalidation regression, plan-stamp stability
in sealed mode, statistics merging and the idle-hook autocompaction.
"""

import random
from collections import Counter

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    Query,
    TableSchema,
    eq,
)
from repro.db.aggregation import aggregate_query, avg, count, sum_
from repro.errors import TransactionError

BUCKETS = ("red", "green", "blue", "amber")


def _make_db() -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "item",
                [
                    Column("item_id", DataType.INTEGER),
                    Column("bucket", DataType.TEXT),
                    Column("qty", DataType.INTEGER),
                ],
                primary_key="item_id",
            )
        ]
    )
    database = Database(schema)
    database.create_index("item", "bucket")
    return database


def _fill(database: Database, n: int = 40) -> None:
    for i in range(1, n + 1):
        database.insert(
            "item",
            {
                "item_id": i,
                "bucket": BUCKETS[i % len(BUCKETS)],
                "qty": i % 7,
            },
        )


def _row_id_of(database: Database, item_id: int) -> int:
    return database.table("item").lookup("item_id", item_id)[0]


class TestSealLifecycle:
    def test_fresh_table_is_unsealed(self):
        database = _make_db()
        _fill(database)
        table = database.table("item")
        assert not table.is_sealed
        assert table.sealed_epoch == 0
        assert table.sealed_rows == 0
        assert table.delta_rows == len(table)

    def test_compact_seals_every_table(self):
        database = _make_db()
        _fill(database)
        assert database.compact() == 1
        table = database.table("item")
        assert table.is_sealed
        assert table.sealed_rows == 40
        assert table.delta_rows == 0
        assert table.compactions == 1
        assert table.last_compaction_seconds >= 0.0

    def test_writes_land_in_the_delta(self):
        database = _make_db()
        _fill(database)
        database.compact()
        table = database.table("item")
        database.insert(
            "item", {"item_id": 41, "bucket": "red", "qty": 1}
        )
        assert table.sealed_rows == 40
        assert table.delta_rows == 1
        # Deleting a sealed row retires its slot instead of freeing it.
        database.delete("item", _row_id_of(database, 5))
        stats = table.storage_stats()
        assert stats.retired_rows == 1
        assert stats.sealed_rows == 40  # retired slots stay counted
        # Updating a sealed row appends the new version to the delta
        # and retires the sealed slot.
        database.update("item", _row_id_of(database, 6), {"qty": 99})
        stats = table.storage_stats()
        assert stats.retired_rows == 2
        assert stats.delta_rows == 2

    def test_recompaction_folds_the_delta(self):
        database = _make_db()
        _fill(database)
        database.compact()
        database.insert("item", {"item_id": 41, "bucket": "red", "qty": 1})
        database.delete("item", _row_id_of(database, 5))
        table = database.table("item")
        epoch = table.sealed_epoch
        assert database.compact() == 1
        assert table.sealed_epoch > epoch
        assert table.delta_rows == 0
        assert table.storage_stats().retired_rows == 0
        assert table.sealed_rows == 40  # 40 - 1 deleted + 1 inserted
        assert sorted(r["item_id"] for r in database.rows("item")) == (
            [i for i in range(1, 42) if i != 5]
        )

    def test_fully_sealed_compact_is_a_noop(self):
        database = _make_db()
        _fill(database)
        assert database.compact() == 1
        assert database.compact() == 0

    def test_compact_refused_under_a_pin(self):
        database = _make_db()
        _fill(database)
        with database.snapshots.pinned():
            assert database.compact() == 0
        assert database.compact() == 1

    def test_compact_refused_inside_a_transaction(self):
        database = _make_db()
        _fill(database)
        database.transactions.begin()
        try:
            with pytest.raises(TransactionError):
                database.compact()
        finally:
            database.transactions.rollback()

    def test_storage_stats_keyed_by_table(self):
        database = _make_db()
        _fill(database)
        database.compact()
        stats = database.storage_stats()
        assert set(stats) == {"item"}
        assert stats["item"].table == "item"
        assert stats["item"].sealed_epoch == 1


class TestGroupedReduce:
    def test_requires_seal_and_index(self):
        database = _make_db()
        _fill(database)
        table = database.table("item")
        assert table.grouped_reduce("bucket") is None  # not sealed
        database.compact()
        assert table.grouped_reduce("bucket") is not None
        assert table.grouped_reduce("qty") is None  # no index

    def _expected(self, database):
        """Group keys/sizes/sums in first-appearance (row id) order."""
        keys, sizes, sums, nonnull = [], {}, {}, {}
        table = database.table("item")
        for row_id in table.row_ids():
            row = table.get(row_id)
            key = row["bucket"]
            if key is None:
                continue
            if key not in sizes:
                keys.append(key)
                sizes[key] = 0
                sums[key] = 0
                nonnull[key] = 0
            sizes[key] += 1
            if row["qty"] is not None:
                sums[key] += row["qty"]
                nonnull[key] += 1
        return keys, sizes, sums, nonnull

    def _check_parity(self, database):
        reduce = database.table("item").grouped_reduce("bucket")
        assert reduce is not None
        keys, sizes, sums, nonnull = self._expected(database)
        assert reduce.keys == keys
        assert reduce.sizes == [sizes[k] for k in keys]
        got_sums, got_nn = reduce.sums("qty")
        assert got_sums == [sums[k] for k in keys]
        assert got_nn == [nonnull[k] for k in keys]

    def test_parity_after_mixed_writes(self):
        database = _make_db()
        _fill(database)
        database.compact()
        self._check_parity(database)
        # New group appearing only in the delta.
        database.insert(
            "item", {"item_id": 50, "bucket": "violet", "qty": 3}
        )
        # NULL value cell: counted in the group, excluded from sums.
        database.insert("item", {"item_id": 52, "bucket": "red", "qty": None})
        # Retire sealed cells: one update, one delete.
        database.update("item", _row_id_of(database, 4), {"qty": 6})
        database.delete("item", _row_id_of(database, 8))
        self._check_parity(database)

    def test_null_group_keys_disable_the_reduce(self):
        database = _make_db()
        _fill(database)
        database.compact()
        database.insert("item", {"item_id": 51, "bucket": None, "qty": 9})
        table = database.table("item")
        assert table.grouped_reduce("bucket") is None
        # The executor falls back; the aggregate stays correct (the
        # accumulator path groups NULL keys as their own group).
        result = aggregate_query(
            database, Query("item"), {"n": count()}, ["bucket"]
        )
        expected = Counter(row["bucket"] for row in database.rows("item"))
        assert {r["bucket"]: r["n"] for r in result} == dict(expected)

    def test_group_emptied_by_deletes_disappears(self):
        database = _make_db()
        _fill(database, n=8)
        database.compact()
        for item_id in (4, 8):  # the whole "red" group (i % 4 == 0)
            database.delete("item", _row_id_of(database, item_id))
        reduce = database.table("item").grouped_reduce("bucket")
        assert "red" not in reduce.keys
        self._check_parity(database)

    def test_first_appearance_order_tracks_min_row_id(self):
        database = _make_db()
        _fill(database, n=8)
        database.compact()
        # Delete every sealed "green" row (ids 1 and 5), then re-add
        # one in the delta: green must now sort *after* the groups
        # whose minimum row id is smaller.
        for item_id in (1, 5):
            database.delete("item", _row_id_of(database, item_id))
        database.insert(
            "item", {"item_id": 60, "bucket": "green", "qty": 2}
        )
        self._check_parity(database)
        assert database.table("item").grouped_reduce("bucket").keys[-1] == (
            "green"
        )

    def test_memo_survives_foreign_table_queries(self):
        database = _make_db()
        _fill(database)
        database.compact()
        table = database.table("item")
        first = table.grouped_reduce("bucket")
        assert table.grouped_reduce("bucket") is first  # same generation
        database.insert("item", {"item_id": 70, "bucket": "red", "qty": 1})
        assert table.grouped_reduce("bucket") is not first


class TestCacheRetention:
    def test_sealed_bucket_lists_are_reused_across_writes(self):
        database = _make_db()
        _fill(database)
        database.compact()
        table = database.table("item")
        before = table.slot_buckets("bucket")
        database.insert(
            "item", {"item_id": 41, "bucket": "red", "qty": 2}
        )
        after = table.slot_buckets("bucket")
        # The written key re-merges; untouched keys keep the very same
        # sealed list objects — the retention the seal exists for.
        assert after is not before
        assert after["green"] is before["green"]
        assert after["blue"] is before["blue"]
        assert len(after["red"]) == len(before["red"]) + 1

    def test_flat_table_still_rebuilds(self):
        database = _make_db()
        _fill(database)
        table = database.table("item")
        before = table.slot_buckets("bucket")
        database.insert(
            "item", {"item_id": 41, "bucket": "red", "qty": 2}
        )
        after = table.slot_buckets("bucket")
        assert after["green"] is not before["green"]

    def test_plan_stamp_stable_across_sealed_commits(self):
        database = _make_db()
        _fill(database)
        database.compact()
        stamp = database.plan_stamp
        database.insert("item", {"item_id": 41, "bucket": "red", "qty": 2})
        database.update("item", _row_id_of(database, 3), {"qty": 5})
        assert database.plan_stamp == stamp
        # DDL still invalidates plans, sealed or not.
        database.create_index("item", "qty")
        assert database.plan_stamp > stamp

    def test_plan_stamp_churns_when_flat(self):
        database = _make_db()
        _fill(database)
        stamp = database.plan_stamp
        database.insert("item", {"item_id": 41, "bucket": "red", "qty": 2})
        assert database.plan_stamp > stamp


class TestVacuumMemoInvalidation:
    """Regression: vacuum's wholesale reset used to leave memoised
    layouts keyed to pre-vacuum slot ids."""

    def _bucket_rids(self, table, column):
        return {
            key: sorted(table.ids_for_slots(slots))
            for key, slots in table.slot_buckets(column).items()
        }

    def test_slot_buckets_valid_after_vacuum_reset(self):
        database = _make_db()
        _fill(database)
        table = database.table("item")
        table.slot_buckets("bucket")  # prime the memo
        # Delete most rows so vacuum takes its wholesale-reset path.
        for item_id in range(1, 31):
            database.delete("item", _row_id_of(database, item_id))
        table.vacuum(None)
        expected = {}
        for row_id in table.row_ids():
            row = table.get(row_id)
            expected.setdefault(row["bucket"], []).append(row_id)
        assert self._bucket_rids(table, "bucket") == {
            key: sorted(rids) for key, rids in expected.items()
        }

    def test_join_parity_after_vacuum(self):
        database = _make_db()
        _fill(database)
        table = database.table("item")
        table.grouped_layout("bucket")
        table.slot_buckets("bucket")
        for item_id in range(1, 31):
            database.delete("item", _row_id_of(database, item_id))
        table.vacuum(None)
        result = aggregate_query(
            database, Query("item"), {"n": count()}, ["bucket"]
        )
        expected = Counter(
            row["bucket"] for row in database.rows("item")
        )
        assert {r["bucket"]: r["n"] for r in result} == dict(expected)


class TestStatisticsMerge:
    def test_column_counts_match_a_rescan(self):
        database = _make_db()
        _fill(database)
        database.compact()
        database.insert("item", {"item_id": 41, "bucket": None, "qty": 2})
        database.update("item", _row_id_of(database, 2), {"bucket": "red"})
        database.delete("item", _row_id_of(database, 12))
        table = database.table("item")
        counts, nulls = table.column_counts("bucket")
        values = [row["bucket"] for row in database.rows("item")]
        assert counts == Counter(v for v in values if v is not None)
        assert nulls == sum(1 for v in values if v is None)

    def test_unsealed_column_counts_unavailable(self):
        database = _make_db()
        _fill(database)
        assert database.table("item").column_counts("bucket") is None


class TestAutocompaction:
    def test_idle_hook_recompacts_past_threshold(self):
        database = _make_db()
        _fill(database)
        database.compact()
        database.autocompact_delta = 4
        for item_id in range(41, 47):
            database.insert(
                "item", {"item_id": item_id, "bucket": "red", "qty": 1}
            )
        table = database.table("item")
        assert table.delta_rows == 6
        # Draining the last snapshot pin fires the idle hook.
        with database.snapshots.pinned(read_only=True):
            pass
        assert table.delta_rows == 0
        assert table.compactions == 2

    def test_no_autocompaction_in_flat_mode(self):
        database = _make_db()
        _fill(database)
        database.autocompact_delta = 4
        with database.snapshots.pinned(read_only=True):
            pass
        assert not database.table("item").is_sealed


class TestRandomizedParity:
    def test_sealed_tracks_flat_replica(self):
        sealed_db = _make_db()
        flat_db = _make_db()
        for database in (sealed_db, flat_db):
            _fill(database)
        sealed_db.compact()
        rng = random.Random(31)
        next_id = 41
        live = set(range(1, 41))
        for step in range(300):
            roll = rng.random()
            if roll < 0.45:
                values = {
                    "item_id": next_id,
                    "bucket": rng.choice(BUCKETS + (None, "violet")),
                    "qty": rng.choice((None, 0, 1, 2, 5)),
                }
                live.add(next_id)
                next_id += 1
                for database in (sealed_db, flat_db):
                    database.insert("item", dict(values))
            elif roll < 0.7 and live:
                target = rng.choice(sorted(live))
                changes = {"qty": rng.randint(0, 9)}
                if rng.random() < 0.3:
                    changes["bucket"] = rng.choice(BUCKETS)
                for database in (sealed_db, flat_db):
                    database.update(
                        "item", _row_id_of(database, target), dict(changes)
                    )
            elif roll < 0.85 and live:
                target = rng.choice(sorted(live))
                live.discard(target)
                for database in (sealed_db, flat_db):
                    database.delete("item", _row_id_of(database, target))
            else:
                sealed_db.compact()
            if step % 20 == 0 or step == 299:
                assert sealed_db.rows("item") == flat_db.rows("item")
                grouped = [
                    aggregate_query(
                        database,
                        Query("item"),
                        {"n": count(), "total": sum_("qty"),
                         "mean": avg("qty")},
                        ["bucket"],
                    )
                    for database in (sealed_db, flat_db)
                ]
                assert grouped[0] == grouped[1]
                probe = [
                    Query("item").where(eq("bucket", "red")).run(database)
                    for database in (sealed_db, flat_db)
                ]
                assert probe[0] == probe[1]
