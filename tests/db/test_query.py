"""Tests for the predicate and query layer."""

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Query,
    TableSchema,
    and_,
    contains,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
    not_,
    or_,
)
from repro.db.query import TruePredicate
from repro.errors import QueryError


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "movie",
                [
                    Column("movie_id", DataType.INTEGER),
                    Column("title", DataType.TEXT, nullable=False),
                    Column("year", DataType.INTEGER),
                ],
                primary_key="movie_id",
            ),
            TableSchema(
                "screening",
                [
                    Column("screening_id", DataType.INTEGER),
                    Column("movie_id", DataType.INTEGER),
                    Column("room", DataType.TEXT),
                ],
                primary_key="screening_id",
                foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
            ),
        ]
    )
    database = Database(schema)
    database.insert("movie", {"movie_id": 1, "title": "Heat", "year": 1995})
    database.insert("movie", {"movie_id": 2, "title": "Ran", "year": 1985})
    database.insert("movie", {"movie_id": 3, "title": "Alien", "year": None})
    database.insert("screening", {"screening_id": 1, "movie_id": 1, "room": "A"})
    database.insert("screening", {"screening_id": 2, "movie_id": 1, "room": "B"})
    database.insert("screening", {"screening_id": 3, "movie_id": 2, "room": "A"})
    return database


class TestPredicates:
    def test_eq(self):
        assert eq("a", 1).matches({"a": 1})
        assert not eq("a", 1).matches({"a": 2})

    def test_null_rejected_by_all_comparisons(self):
        row = {"a": None}
        for predicate in (eq("a", 1), ne("a", 1), lt("a", 1), gt("a", 1)):
            assert not predicate.matches(row)

    def test_ordering_operators(self):
        row = {"a": 5}
        assert lt("a", 6).matches(row)
        assert le("a", 5).matches(row)
        assert gt("a", 4).matches(row)
        assert ge("a", 5).matches(row)

    def test_contains_case_insensitive(self):
        assert contains("t", "gump").matches({"t": "Forrest Gump"})
        assert not contains("t", "xyz").matches({"t": "Forrest Gump"})

    def test_in(self):
        assert in_("a", [1, 2]).matches({"a": 2})
        assert not in_("a", [1, 2]).matches({"a": 3})

    def test_and_or_not(self):
        row = {"a": 1, "b": 2}
        assert and_(eq("a", 1), eq("b", 2)).matches(row)
        assert not and_(eq("a", 1), eq("b", 3)).matches(row)
        assert or_(eq("a", 9), eq("b", 2)).matches(row)
        assert not_(eq("a", 9)).matches(row)

    def test_and_identity(self):
        assert isinstance(and_(), TruePredicate)
        single = eq("a", 1)
        assert and_(single) is single

    def test_or_requires_argument(self):
        with pytest.raises(QueryError):
            or_()

    def test_unknown_operator_rejected(self):
        from repro.db.query import Comparison

        with pytest.raises(QueryError):
            Comparison("a", "<>", 1)

    def test_missing_column_raises(self):
        with pytest.raises(QueryError):
            eq("missing", 1).matches({"a": 1})

    def test_equality_bindings(self):
        predicate = and_(eq("a", 1), gt("b", 2), eq("c", 3))
        assert predicate.equality_bindings() == {"a": 1, "c": 3}

    def test_columns_collected(self):
        predicate = or_(eq("a", 1), and_(eq("b", 2), not_(eq("c", 3))))
        assert predicate.columns() == {"a", "b", "c"}

    def test_type_error_comparison_is_false(self):
        assert not lt("a", "zzz").matches({"a": 5})


class TestQuery:
    def test_select_all(self, db):
        rows = Query("movie").run(db)
        assert len(rows) == 3

    def test_where_eq_uses_index(self, db):
        rows = Query("movie").where(eq("movie_id", 2)).run(db)
        assert [r["title"] for r in rows] == ["Ran"]

    def test_where_non_indexed(self, db):
        rows = Query("movie").where(gt("year", 1990)).run(db)
        assert [r["title"] for r in rows] == ["Heat"]

    def test_join_widens_rows(self, db):
        rows = (
            Query("screening")
            .join("movie_id", "movie", "movie_id")
            .where(eq("movie.title", "Heat"))
            .run(db)
        )
        assert len(rows) == 2
        assert all(r["movie.year"] == 1995 for r in rows)

    def test_order_by(self, db):
        rows = Query("movie").order_by("title").run(db)
        assert [r["title"] for r in rows] == ["Alien", "Heat", "Ran"]

    def test_order_by_descending(self, db):
        rows = Query("movie").order_by("title", descending=True).run(db)
        assert rows[0]["title"] == "Ran"

    def test_order_by_nulls_last(self, db):
        rows = Query("movie").order_by("year").run(db)
        assert rows[-1]["title"] == "Alien"

    def test_limit(self, db):
        assert len(Query("movie").limit(2).run(db)) == 2

    def test_negative_limit_rejected(self, db):
        with pytest.raises(QueryError):
            Query("movie").limit(-1)

    def test_projection(self, db):
        rows = Query("movie").select("title").limit(1).run(db)
        assert list(rows[0]) == ["title"]

    def test_count(self, db):
        assert Query("screening").where(eq("room", "A")).count(db) == 2

    def test_fluent_chaining_returns_self(self, db):
        query = Query("movie")
        assert query.where(eq("movie_id", 1)) is query
