"""Tests for row storage, indexes and constraints."""

import pytest

from repro.db import Column, DataType, TableSchema
from repro.db.table import Table
from repro.errors import ConstraintViolation, UnknownColumnError


@pytest.fixture()
def customers():
    schema = TableSchema(
        "customer",
        [
            Column("customer_id", DataType.INTEGER),
            Column("name", DataType.TEXT, nullable=False),
            Column("email", DataType.TEXT, unique=True),
            Column("city", DataType.TEXT),
        ],
        primary_key="customer_id",
    )
    return Table(schema)


class TestInsert:
    def test_insert_returns_row_id(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        assert rid == 1
        assert len(customers) == 1

    def test_row_ids_monotonic(self, customers):
        first = customers.insert({"customer_id": 1, "name": "Ada"})
        second = customers.insert({"customer_id": 2, "name": "Bob"})
        assert second > first

    def test_missing_column_defaults_null(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        assert customers.get(rid)["city"] is None

    def test_values_coerced(self, customers):
        rid = customers.insert({"customer_id": "7", "name": "Ada"})
        assert customers.get(rid)["customer_id"] == 7

    def test_unknown_column_rejected(self, customers):
        with pytest.raises(UnknownColumnError):
            customers.insert({"customer_id": 1, "name": "Ada", "zzz": 1})

    def test_not_null_enforced(self, customers):
        with pytest.raises(ConstraintViolation):
            customers.insert({"customer_id": 1})

    def test_pk_not_null(self, customers):
        with pytest.raises(ConstraintViolation):
            customers.insert({"name": "Ada"})

    def test_pk_unique(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada"})
        with pytest.raises(ConstraintViolation):
            customers.insert({"customer_id": 1, "name": "Bob"})

    def test_unique_column_enforced(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada", "email": "a@x"})
        with pytest.raises(ConstraintViolation):
            customers.insert({"customer_id": 2, "name": "Bob", "email": "a@x"})

    def test_null_unique_values_allowed_repeatedly(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada"})
        customers.insert({"customer_id": 2, "name": "Bob"})  # both emails NULL


class TestUpdate:
    def test_update_changes_value(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        old = customers.update(rid, {"city": "Mainz"})
        assert old["city"] is None
        assert customers.get(rid)["city"] == "Mainz"

    def test_update_maintains_index(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        customers.update(rid, {"customer_id": 9})
        assert customers.lookup("customer_id", 9) == [rid]
        assert customers.lookup("customer_id", 1) == []

    def test_update_unique_violation(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada", "email": "a@x"})
        rid = customers.insert({"customer_id": 2, "name": "Bob", "email": "b@x"})
        with pytest.raises(ConstraintViolation):
            customers.update(rid, {"email": "a@x"})

    def test_self_update_allowed(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada", "email": "a@x"})
        customers.update(rid, {"email": "a@x"})  # no-op is fine


class TestDeleteRestore:
    def test_delete_removes(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        row = customers.delete(rid)
        assert row["name"] == "Ada"
        assert len(customers) == 0
        assert customers.lookup("customer_id", 1) == []

    def test_restore_roundtrip(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        row = customers.delete(rid)
        customers.restore(rid, row)
        assert customers.get(rid) == row
        assert customers.lookup("customer_id", 1) == [rid]

    def test_restore_in_use_rejected(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        with pytest.raises(ConstraintViolation):
            customers.restore(rid, {"customer_id": 2, "name": "X",
                                    "email": None, "city": None})


class TestLookupScan:
    def test_lookup_with_index(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        assert customers.lookup("customer_id", 1) == [rid]

    def test_lookup_without_index(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada", "city": "Mainz"})
        customers.insert({"customer_id": 2, "name": "Bob", "city": "Worms"})
        assert customers.lookup("city", "Mainz") == [rid]

    def test_lookup_coerces_needle(self, customers):
        rid = customers.insert({"customer_id": 1, "name": "Ada"})
        assert customers.lookup("customer_id", "1") == [rid]

    def test_lookup_null_matches_nothing(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada"})
        assert customers.lookup("city", None) == []

    def test_scan_with_predicate(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada", "city": "Mainz"})
        customers.insert({"customer_id": 2, "name": "Bob", "city": "Worms"})
        result = customers.scan(lambda row: row["city"] == "Worms")
        assert len(result) == 1

    def test_create_index_backfills(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada", "city": "Mainz"})
        customers.create_index("city")
        assert customers.has_index("city")
        assert customers.lookup("city", "Mainz") != []


class TestColumnValues:
    def test_all_rows(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada"})
        customers.insert({"customer_id": 2, "name": "Bob"})
        assert customers.column_values("name") == ["Ada", "Bob"]

    def test_subset(self, customers):
        a = customers.insert({"customer_id": 1, "name": "Ada"})
        customers.insert({"customer_id": 2, "name": "Bob"})
        assert customers.column_values("name", [a]) == ["Ada"]

    def test_distinct_count(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada", "city": "Mainz"})
        customers.insert({"customer_id": 2, "name": "Bob", "city": "Mainz"})
        customers.insert({"customer_id": 3, "name": "Cid"})
        assert customers.distinct_count("city") == 1
        assert customers.distinct_count("name") == 3

    def test_iteration_returns_copies(self, customers):
        customers.insert({"customer_id": 1, "name": "Ada"})
        for row in customers:
            row["name"] = "mutated"
        assert customers.get(1)["name"] == "Ada"
