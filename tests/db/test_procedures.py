"""Tests for stored procedures: binding, registry, atomic execution."""

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    Parameter,
    Procedure,
    TableSchema,
)
from repro.errors import ProcedureError


@pytest.fixture()
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "item",
                [
                    Column("item_id", DataType.INTEGER),
                    Column("stock", DataType.INTEGER, nullable=False),
                ],
                primary_key="item_id",
            )
        ]
    )
    database = Database(schema)
    database.insert("item", {"item_id": 1, "stock": 5})
    return database


def take_stock(database, item_id, amount):
    rid = database.table("item").lookup("item_id", item_id)[0]
    row = database.table("item").get(rid)
    database.update("item", rid, {"stock": row["stock"] - amount})
    if row["stock"] - amount < 0:
        raise ProcedureError("stock would go negative")
    return row["stock"] - amount


def make_procedure():
    return Procedure(
        name="take_stock",
        parameters=[
            Parameter("item_id", DataType.INTEGER, references=("item", "item_id")),
            Parameter("amount", DataType.INTEGER),
        ],
        body=take_stock,
        writes=("item",),
    )


class TestProcedureDefinition:
    def test_invalid_name_rejected(self):
        with pytest.raises(ProcedureError):
            Procedure("bad name!", [], lambda db: None)

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ProcedureError):
            Procedure(
                "p",
                [Parameter("a", DataType.INTEGER),
                 Parameter("a", DataType.INTEGER)],
                lambda db, a: None,
            )

    def test_description_defaults_to_name(self):
        procedure = Procedure("do_thing", [], lambda db: None)
        assert procedure.description == "do thing"

    def test_parameter_lookup(self):
        procedure = make_procedure()
        assert procedure.parameter("amount").dtype is DataType.INTEGER
        with pytest.raises(ProcedureError):
            procedure.parameter("nope")

    def test_entity_reference_flag(self):
        procedure = make_procedure()
        assert procedure.parameter("item_id").is_entity_reference
        assert not procedure.parameter("amount").is_entity_reference


class TestBinding:
    def test_bind_coerces(self):
        bound = make_procedure().bind({"item_id": "1", "amount": "2"})
        assert bound == {"item_id": 1, "amount": 2}

    def test_missing_required_rejected(self):
        with pytest.raises(ProcedureError):
            make_procedure().bind({"item_id": 1})

    def test_unknown_argument_rejected(self):
        with pytest.raises(ProcedureError):
            make_procedure().bind({"item_id": 1, "amount": 1, "zzz": 2})

    def test_optional_defaults_to_none(self):
        procedure = Procedure(
            "p",
            [Parameter("a", DataType.INTEGER, optional=True)],
            lambda db, a: a,
        )
        assert procedure.bind({}) == {"a": None}


class TestRegistry:
    def test_register_and_call(self, db):
        db.procedures.register(make_procedure())
        result = db.procedures.call("take_stock", item_id=1, amount=2)
        assert result.value == 3
        assert db.find_one("item", "item_id", 1)["stock"] == 3

    def test_duplicate_registration_rejected(self, db):
        db.procedures.register(make_procedure())
        with pytest.raises(ProcedureError):
            db.procedures.register(make_procedure())

    def test_unknown_procedure_rejected(self, db):
        with pytest.raises(ProcedureError):
            db.procedures.call("nope")

    def test_reference_validated_at_registration(self, db):
        bad = Procedure(
            "p",
            [Parameter("x", DataType.INTEGER, references=("ghost", "id"))],
            lambda db, x: None,
        )
        with pytest.raises(Exception):
            db.procedures.register(bad)

    def test_names_and_iteration(self, db):
        db.procedures.register(make_procedure())
        assert "take_stock" in db.procedures
        assert db.procedures.names() == ("take_stock",)
        assert [p.name for p in db.procedures] == ["take_stock"]


class TestAtomicity:
    def test_failed_call_rolls_back(self, db):
        db.procedures.register(make_procedure())
        with pytest.raises(ProcedureError):
            db.procedures.call("take_stock", item_id=1, amount=99)
        # The update ran before the failure but must have been undone.
        assert db.find_one("item", "item_id", 1)["stock"] == 5

    def test_successful_call_commits(self, db):
        db.procedures.register(make_procedure())
        before = db.data_version
        db.procedures.call("take_stock", item_id=1, amount=1)
        assert db.data_version > before

    def test_call_inside_open_transaction_joins_it(self, db):
        db.procedures.register(make_procedure())
        db.transactions.begin()
        db.procedures.call("take_stock", item_id=1, amount=1)
        db.transactions.rollback()
        assert db.find_one("item", "item_id", 1)["stock"] == 5


class TestReadOnlyProcedures:
    def make_reader(self):
        return Procedure(
            name="check_stock",
            parameters=[
                Parameter("item_id", DataType.INTEGER,
                          references=("item", "item_id")),
            ],
            body=lambda database, item_id: database.find_one(
                "item", "item_id", item_id
            )["stock"],
            reads=("item",),
        )

    def test_read_only_call_does_not_bump_data_version(self, db):
        """Read-only calls must not invalidate the shared caches."""
        db.procedures.register(self.make_reader())
        before = db.data_version
        committed_before = db.transactions.committed_count
        result = db.procedures.call("check_stock", item_id=1)
        assert result.value == 5
        assert db.data_version == before
        assert db.transactions.committed_count == committed_before

    def test_read_only_calls_run_concurrently(self, db):
        """Two read-only bodies can be in flight at the same time."""
        import threading

        db.procedures.register(
            Procedure(
                name="paired_read",
                parameters=[],
                body=lambda database: barrier.wait(timeout=5),
                reads=("item",),
            )
        )
        barrier = threading.Barrier(2)
        errors = []

        def call():
            try:
                db.procedures.call("paired_read")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=call) for __ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        # The barrier only releases when both bodies overlap; a write
        # lock would serialize them and time out.
        assert not errors

    def test_misdeclared_read_only_writer_is_rejected(self, db):
        db.procedures.register(
            Procedure(
                name="sneaky_write",
                parameters=[],
                body=lambda database: database.update(
                    "item",
                    database.table("item").lookup("item_id", 1)[0],
                    {"stock": 0},
                ),
                reads=("item",),
            )
        )
        with pytest.raises(ProcedureError, match="read-only"):
            db.procedures.call("sneaky_write")
        assert db.find_one("item", "item_id", 1)["stock"] == 5
