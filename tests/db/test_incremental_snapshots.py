"""Tests for snapshot format v4 and incremental (base + delta log)
persistence: exact row-id restores, commit-only logging, crash-torn
log recovery and compatibility with the older snapshot formats."""

import json
import os

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
    dump_incremental,
    dumps_database,
    load_incremental,
    loads_database,
)
from repro.db.persistence import BASE_SNAPSHOT_NAME, DELTA_LOG_NAME
from repro.db.segments import _record_crc
from repro.errors import DatabaseError


def _make_db() -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "item",
                [
                    Column("item_id", DataType.INTEGER),
                    Column("bucket", DataType.TEXT),
                    Column("qty", DataType.INTEGER),
                ],
                primary_key="item_id",
            )
        ]
    )
    database = Database(schema)
    database.create_index("item", "bucket")
    for i in range(1, 11):
        database.insert(
            "item", {"item_id": i, "bucket": "b%d" % (i % 3), "qty": i}
        )
    return database


def _rows(database: Database) -> dict:
    return {name: database.rows(name) for name in database.table_names}


class TestV4Format:
    def test_default_dump_stays_v3(self, movie_db):
        database, __ = movie_db
        body = json.loads(dumps_database(database))
        assert body["format_version"] == 3
        assert "row_ids" not in body

    def test_v4_dump_carries_row_ids_and_counter(self, movie_db):
        database, __ = movie_db
        body = json.loads(dumps_database(database, version=4))
        assert body["format_version"] == 4
        assert "generation" in body
        for name in database.table_names:
            assert body["row_ids"][name] == database.table(name).row_ids()
        assert body["next_row_id"]["screening"] == (
            database.table("screening").next_row_id
        )

    def test_v4_roundtrip_preserves_exact_row_ids(self, movie_db):
        database, __ = movie_db
        # Punch holes so ids and positions diverge.
        for rid in database.table("reservation").row_ids()[2:5]:
            database.delete("reservation", rid)
        restored = loads_database(dumps_database(database, version=4))
        for name in database.table_names:
            assert restored.table(name).row_ids() == (
                database.table(name).row_ids()
            )
            assert restored.rows(name) == database.rows(name)
        # The id counter survives: the next insert allocates the same
        # internal row id on both sides.
        values = {
            "reservation_id": 90001,
            "customer_id": 1,
            "screening_id": 1,
            "no_tickets": 2,
        }
        assert restored.insert("reservation", dict(values)) == (
            database.insert("reservation", dict(values))
        )

    def test_unknown_dump_version_rejected(self, movie_db):
        database, __ = movie_db
        with pytest.raises(DatabaseError):
            dumps_database(database, version=9)


class TestIncrementalRoundtrip:
    def test_base_plus_log_matches_live(self, tmp_path):
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        assert os.path.exists(os.path.join(directory, BASE_SNAPSHOT_NAME))
        assert os.path.exists(os.path.join(directory, DELTA_LOG_NAME))
        database.insert(
            "item", {"item_id": 11, "bucket": "b1", "qty": 4}
        )
        row_id = database.table("item").lookup("item_id", 3)[0]
        database.update("item", row_id, {"qty": 99})
        database.delete(
            "item", database.table("item").lookup("item_id", 7)[0]
        )
        restored = load_incremental(directory)
        assert _rows(restored) == _rows(database)
        assert restored.table("item").row_ids() == (
            database.table("item").row_ids()
        )
        # The restore compacts: analytic memos are epoch-stable from
        # the first turn.
        assert restored.table("item").is_sealed

    def test_only_committed_state_reaches_the_log(self, tmp_path):
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        # Partial rollback: the post-savepoint tail must not replay.
        database.transactions.begin()
        database.insert("item", {"item_id": 20, "bucket": "b0", "qty": 1})
        database.transactions.savepoint("sp")
        database.insert("item", {"item_id": 21, "bucket": "b0", "qty": 1})
        database.transactions.rollback_to_savepoint("sp")
        database.transactions.commit()
        # A fully rolled-back transaction leaves no trace at all.
        database.transactions.begin()
        database.insert("item", {"item_id": 22, "bucket": "b2", "qty": 5})
        database.transactions.rollback()
        restored = load_incremental(directory)
        assert _rows(restored) == _rows(database)
        ids = [row["item_id"] for row in restored.rows("item")]
        assert 20 in ids and 21 not in ids and 22 not in ids

    def test_empty_log_restores_the_base(self, tmp_path):
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        restored = load_incremental(directory)
        assert _rows(restored) == _rows(database)

    def test_restore_movie_database_accepts_directories(
        self, movie_db, tmp_path
    ):
        from repro.datasets import restore_movie_database

        database, __ = movie_db
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        database.insert(
            "reservation",
            {
                "reservation_id": 90002,
                "customer_id": 1,
                "screening_id": 1,
                "no_tickets": 1,
            },
        )
        restored, annotations = restore_movie_database(directory)
        assert restored.count("reservation") == database.count("reservation")
        assert annotations is not None
        # The registered procedures came back with the database.
        assert "ticket_reservation" in restored.procedures.names()


class TestCrashRecovery:
    def _states(self, tmp_path):
        """Dump a base, apply N commits, record the state after each."""
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        states = [_rows(database)]
        for step in range(6):
            if step % 3 == 2:
                database.delete(
                    "item",
                    database.table("item").lookup("item_id", step)[0],
                )
            else:
                database.insert(
                    "item",
                    {"item_id": 30 + step, "bucket": "b1", "qty": step},
                )
            states.append(_rows(database))
        return directory, states

    def test_truncation_at_any_offset_recovers_a_prefix(self, tmp_path):
        directory, states = self._states(tmp_path)
        log_path = os.path.join(directory, DELTA_LOG_NAME)
        with open(log_path, "rb") as handle:
            payload = handle.read()
        for cut in (len(payload) - 1, len(payload) // 2,
                    len(payload) // 3, 3, 0):
            with open(log_path, "wb") as handle:
                handle.write(payload[:cut])
            restored = load_incremental(directory)
            assert _rows(restored) in states
        # The intact log restores the final committed state exactly.
        with open(log_path, "wb") as handle:
            handle.write(payload)
        assert _rows(load_incremental(directory)) == states[-1]

    def test_truncation_at_every_offset_of_the_last_record(self, tmp_path):
        """A crash can cut the tail record at *any* byte: every prefix
        must restore the state before that record — never raise."""
        directory, states = self._states(tmp_path)
        log_path = os.path.join(directory, DELTA_LOG_NAME)
        with open(log_path, "rb") as handle:
            payload = handle.read()
        start = payload.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(start, len(payload)):
            with open(log_path, "wb") as handle:
                handle.write(payload[:cut])
            restored = load_incremental(directory)
            assert _rows(restored) == states[-2], f"cut at byte {cut}"
        with open(log_path, "wb") as handle:
            handle.write(payload)
        assert _rows(load_incremental(directory)) == states[-1]

    def test_multibyte_record_truncation_cuts_cleanly(self, tmp_path):
        """Truncation inside a multi-byte UTF-8 sequence is a torn
        record like any other (the text-mode reader used to raise
        UnicodeDecodeError before the line split ever happened)."""
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        before = _rows(database)
        database.insert(
            "item", {"item_id": 99, "bucket": "ß🎬é", "qty": 1}
        )
        after = _rows(database)
        log_path = os.path.join(directory, DELTA_LOG_NAME)
        # The writer escapes to ASCII; an external producer is allowed
        # raw UTF-8 (the CRC covers the decoded content, not the line
        # bytes).  Re-encode the record so the file genuinely contains
        # multi-byte sequences a cut can land inside.
        with open(log_path, encoding="utf-8") as handle:
            record = json.loads(handle.read())
        payload = (
            json.dumps(record, separators=(",", ":"), ensure_ascii=False)
            + "\n"
        ).encode("utf-8")
        assert "ß🎬é".encode("utf-8") in payload
        for cut in range(len(payload)):
            with open(log_path, "wb") as handle:
                handle.write(payload[:cut])
            restored = load_incremental(directory)
            assert _rows(restored) == before, f"cut at byte {cut}"
        with open(log_path, "wb") as handle:
            handle.write(payload)
        assert _rows(load_incremental(directory)) == after

    def test_corrupt_record_cuts_the_tail(self, tmp_path):
        directory, states = self._states(tmp_path)
        log_path = os.path.join(directory, DELTA_LOG_NAME)
        with open(log_path) as handle:
            lines = handle.readlines()
        # Corrupt the third record's content without touching its CRC.
        lines[2] = lines[2].replace('"ops"', '"opz"', 1)
        with open(log_path, "w") as handle:
            handle.writelines(lines)
        restored = load_incremental(directory)
        assert _rows(restored) == states[2]

    def test_non_monotonic_generation_cuts_the_tail(self, tmp_path):
        directory, states = self._states(tmp_path)
        log_path = os.path.join(directory, DELTA_LOG_NAME)
        with open(log_path) as handle:
            lines = handle.readlines()
        lines.insert(2, lines[1])  # replayed generation
        with open(log_path, "w") as handle:
            handle.writelines(lines)
        restored = load_incremental(directory)
        assert _rows(restored) == states[2]

    def test_mismatched_log_rejected(self, tmp_path):
        """A log whose insert ids disagree with the base is an error,
        not silent corruption."""
        database = _make_db()
        directory = str(tmp_path / "snap")
        dump_incremental(database, directory)
        ops = [["insert", "item", 999,
                {"item_id": 50, "bucket": "b0", "qty": 1}]]
        record = {"generation": 10_000, "ops": ops,
                  "crc": _record_crc(10_000, ops)}
        with open(os.path.join(directory, DELTA_LOG_NAME), "a") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        with pytest.raises(DatabaseError):
            load_incremental(directory)

    def test_missing_base_rejected(self, tmp_path):
        with pytest.raises(DatabaseError):
            load_incremental(str(tmp_path / "nowhere"))


class TestOldFormatsStillLoad:
    """v1/v2/v3 snapshots stay loadable next to v4 (full matrix in
    test_persistence; this is the incremental feature's guard)."""

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_downlevel_bodies_load(self, movie_db, version):
        database, __ = movie_db
        body = json.loads(dumps_database(database))
        if version < 3:
            body["format_version"] = version
            body["rows"] = {
                name: [
                    dict(zip(banks, values))
                    for values in zip(*banks.values())
                ]
                for name, banks in body.pop("columns").items()
            }
            if version == 1:
                del body["indexes"]
        restored = loads_database(json.dumps(body))
        assert restored.count("movie") == database.count("movie")
