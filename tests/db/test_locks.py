"""Tests for the readers–writer lock backing the serving runtime."""

import threading

import pytest

from repro.db import RWLock


def run_with_timeout(target, timeout=5.0):
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout=timeout)
    return not thread.is_alive()


class TestBasics:
    def test_many_readers(self):
        lock = RWLock()
        entered = []
        barrier = threading.Barrier(4)

        def reader():
            with lock.read_lock():
                barrier.wait(timeout=5)  # all four inside simultaneously
                entered.append(1)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(entered) == 4

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_lock():
                order.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.2)
        assert order == []  # blocked behind the writer
        order.append("write-done")
        lock.release_write()
        thread.join(timeout=5)
        assert order == ["write-done", "read"]

    def test_reentrant_write(self):
        lock = RWLock()
        with lock.write_lock():
            with lock.write_lock():
                assert lock.write_held
        assert not lock.write_held

    def test_reentrant_read(self):
        lock = RWLock()
        with lock.read_lock():
            with lock.read_lock():
                pass
        # Fully released: a writer can proceed.
        assert run_with_timeout(lambda: lock.write_lock().__enter__())

    def test_upgrade_refused(self):
        lock = RWLock()
        with lock.read_lock():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_unmatched_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestReadInsideWrite:
    def test_read_inside_write_is_nonblocking(self):
        lock = RWLock()
        with lock.write_lock():
            with lock.read_lock():
                assert lock.write_held

    def test_read_released_after_write_does_not_underflow(self):
        """Regression: unnested release order must not wedge writers.

        acquire_write -> acquire_read -> release_write -> release_read
        used to decrement the reader count below zero, deadlocking every
        subsequent writer.
        """
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()
        lock.release_read()

        def writer():
            with lock.write_lock():
                pass

        assert run_with_timeout(writer), "writer deadlocked after unnested release"

    def test_write_release_downgrades_to_counted_read(self):
        """A read outliving its write must keep real shared protection."""
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()  # downgrade: the read is now a true reader
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert not acquired.wait(timeout=0.2), (
            "writer slipped past a downgraded read lock"
        )
        lock.release_read()
        assert acquired.wait(timeout=5)


class TestSuspendResume:
    def test_suspend_lets_writer_in_then_resumes(self):
        lock = RWLock()
        lock.acquire_read()
        depth = lock.suspend_reads()
        assert depth == 1

        def writer():
            with lock.write_lock():
                pass

        assert run_with_timeout(writer), "writer blocked by suspended reads"
        lock.resume_reads(depth)
        # Reads are held again: a writer must now block.
        blocked = threading.Event()

        def writer2():
            lock.acquire_write()
            blocked.set()
            lock.release_write()

        thread = threading.Thread(target=writer2, daemon=True)
        thread.start()
        assert not blocked.wait(timeout=0.2)
        lock.release_read()
        assert blocked.wait(timeout=5)

    def test_suspend_without_reads_is_noop(self):
        lock = RWLock()
        assert lock.suspend_reads() == 0
        lock.resume_reads(0)  # must not acquire anything
        assert run_with_timeout(lambda: lock.write_lock().__enter__())

    def test_suspend_preserves_depth(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        depth = lock.suspend_reads()
        assert depth == 2
        lock.resume_reads(depth)
        lock.release_read()
        lock.release_read()
        assert run_with_timeout(lambda: lock.write_lock().__enter__())

    def test_suspend_under_write_is_noop(self):
        lock = RWLock()
        with lock.write_lock():
            with lock.read_lock():
                assert lock.suspend_reads() == 0


class TestStress:
    def test_readers_and_writers_interleave_without_deadlock(self):
        lock = RWLock()
        counter = {"value": 0, "max_concurrent_writers": 0}
        active_writers = []
        errors = []

        def reader():
            try:
                for __ in range(200):
                    with lock.read_lock():
                        assert not active_writers
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            try:
                for __ in range(50):
                    with lock.write_lock():
                        active_writers.append(1)
                        counter["value"] += 1
                        active_writers.pop()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(6)]
        threads += [threading.Thread(target=writer) for __ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert counter["value"] == 150
