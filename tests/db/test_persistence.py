"""Tests for database JSON snapshots."""

import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    TableSchema,
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)
from repro.errors import DatabaseError


class TestRoundtrip:
    def test_movie_db_roundtrip(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        assert restored.table_names == database.table_names
        for name in database.table_names:
            assert restored.rows(name) == database.rows(name)

    def test_dates_and_times_survive(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        import datetime as dt

        row = restored.rows("screening")[0]
        assert isinstance(row["date"], dt.date)
        assert isinstance(row["start_time"], dt.time)

    def test_schema_constraints_survive(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        schema = restored.schema.table("screening")
        assert schema.primary_key == "screening_id"
        fk = schema.foreign_key_for("movie_id")
        assert fk is not None and fk.target_table == "movie"
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            restored.insert(
                "screening",
                {"screening_id": 1, "movie_id": 1, "date": "2022-01-01",
                 "start_time": "20:00", "capacity": 10},
            )

    def test_file_roundtrip(self, movie_db, tmp_path):
        database, __ = movie_db
        path = tmp_path / "snapshot.json"
        dump_database(database, str(path))
        restored = load_database(str(path))
        assert restored.count("customer") == database.count("customer")

    def test_restored_db_is_mutable(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        before = restored.count("customer")
        restored.insert(
            "customer",
            {"customer_id": 9999, "first_name": "Zoe", "last_name": "Zett",
             "email": "zoe@example.com"},
        )
        assert restored.count("customer") == before + 1

    def test_fk_dependency_order_resolved(self):
        # Child serialised before its parent must still load.
        schema = DatabaseSchema(
            [
                TableSchema(
                    "zchild",
                    [Column("id", DataType.INTEGER),
                     Column("parent_id", DataType.INTEGER)],
                    primary_key="id",
                    foreign_keys=[ForeignKey("parent_id", "aparent", "id")],
                ),
                TableSchema(
                    "aparent",
                    [Column("id", DataType.INTEGER)],
                    primary_key="id",
                ),
            ]
        )
        database = Database(schema)
        database.insert("aparent", {"id": 1})
        database.insert("zchild", {"id": 1, "parent_id": 1})
        restored = loads_database(dumps_database(database))
        assert restored.count("zchild") == 1

    def test_unknown_version_rejected(self):
        with pytest.raises(DatabaseError):
            loads_database('{"format_version": 99, "schema": [], "rows": {}}')


class TestIndexDDLPersistence:
    def test_secondary_indexes_survive_roundtrip(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        for name in database.table_names:
            table = database.table(name)
            loaded = restored.table(name)
            assert loaded.hash_index_columns() == table.hash_index_columns()
            assert loaded.ordered_index_columns() == \
                table.ordered_index_columns()

    def test_loaded_database_plans_identically(self, movie_db):
        import datetime as dt

        from repro.db import Query, and_, eq, ge, le

        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        queries = [
            Query("screening").where(
                and_(ge("date", dt.date(2022, 3, 27)),
                     le("date", dt.date(2022, 3, 30)))
            ),
            Query("screening").where(eq("movie_id", 3)),
            Query("reservation").where(eq("screening_id", 5)),
            Query("movie").order_by("year", descending=True).limit(3),
        ]
        for query in queries:
            assert query.explain(restored) == query.explain(database)

    def test_version_1_snapshot_without_indexes_loads(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        body["format_version"] = 1
        del body["indexes"]
        # v1 stored one dict per row; rebuild that layout from the
        # columnar v3 section.
        body["rows"] = {
            name: [
                dict(zip(banks, values)) for values in zip(*banks.values())
            ]
            for name, banks in body.pop("columns").items()
        }
        restored = loads_database(json.dumps(body))
        assert restored.count("screening") == database.count("screening")
        # Schema-implied indexes exist; secondary DDL is (expectedly) gone.
        assert not restored.table("screening").has_ordered_index("date")

    def test_snapshot_indexes_on_unknown_table_rejected(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        body["indexes"]["ghost_table"] = {"hash": ["x"], "ordered": []}
        with pytest.raises(DatabaseError):
            loads_database(json.dumps(body))


class TestColumnarSnapshotFormat:
    """Format v3: column banks on disk; v1/v2 row layouts still load."""

    def test_dump_is_version_3_and_columnar(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        assert body["format_version"] == 3
        assert "rows" not in body
        banks = body["columns"]["screening"]
        lengths = {column: len(values) for column, values in banks.items()}
        assert set(lengths.values()) == {database.count("screening")}

    def test_v3_roundtrip_preserves_rows_and_order(self, movie_db):
        database, __ = movie_db
        restored = loads_database(dumps_database(database))
        for name in database.table_names:
            assert restored.rows(name) == database.rows(name)

    def test_v3_roundtrip_after_deletes(self, movie_db):
        database, __ = movie_db
        # Punch holes into the slot layout; the snapshot and the reload
        # must both present rows in row-id order regardless.
        reservations = database.table("reservation").row_ids()
        for rid in reservations[1:4]:
            database.delete("reservation", rid)
        restored = loads_database(dumps_database(database))
        assert restored.rows("reservation") == database.rows("reservation")

    def test_version_2_row_snapshot_loads(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        body["format_version"] = 2
        body["rows"] = {
            name: [
                dict(zip(banks, values)) for values in zip(*banks.values())
            ]
            for name, banks in body.pop("columns").items()
        }
        restored = loads_database(json.dumps(body))
        for name in database.table_names:
            assert restored.rows(name) == database.rows(name)
        # v2 carried the index DDL section, so access paths survive.
        assert restored.table("screening").has_ordered_index("date")

    def test_ragged_v3_banks_rejected(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        body["columns"]["screening"]["room"].append("room Z")
        with pytest.raises(DatabaseError):
            loads_database(json.dumps(body))

    def test_missing_content_section_rejected(self, movie_db):
        import json

        database, __ = movie_db
        body = json.loads(dumps_database(database))
        del body["columns"]
        with pytest.raises(DatabaseError):
            loads_database(json.dumps(body))
        legacy = {"format_version": 2,
                  "schema": json.loads(dumps_database(database))["schema"]}
        with pytest.raises(DatabaseError):
            loads_database(json.dumps(legacy))
