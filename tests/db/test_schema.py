"""Tests for schema declaration and validation."""

import pytest

from repro.db import Column, DatabaseSchema, DataType, ForeignKey, TableSchema
from repro.errors import SchemaError, UnknownColumnError, UnknownTableError


def make_movie_table():
    return TableSchema(
        "movie",
        [
            Column("movie_id", DataType.INTEGER),
            Column("title", DataType.TEXT, nullable=False),
        ],
        primary_key="movie_id",
    )


def make_screening_table():
    return TableSchema(
        "screening",
        [
            Column("screening_id", DataType.INTEGER),
            Column("movie_id", DataType.INTEGER),
        ],
        primary_key="screening_id",
        foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
    )


class TestColumn:
    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("Bad Name", DataType.TEXT)

    def test_uppercase_rejected(self):
        with pytest.raises(SchemaError):
            Column("Title", DataType.TEXT)

    def test_dtype_must_be_datatype(self):
        with pytest.raises(SchemaError):
            Column("title", "text")  # type: ignore[arg-type]


class TestTableSchema:
    def test_column_lookup(self):
        table = make_movie_table()
        assert table.column("title").dtype is DataType.TEXT
        assert table.has_column("movie_id")
        assert not table.has_column("nope")

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_movie_table().column("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT), Column("a", DataType.TEXT)],
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.TEXT)], primary_key="b")

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT)],
                foreign_keys=[ForeignKey("b", "other", "id")],
            )

    def test_duplicate_fk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.INTEGER)],
                foreign_keys=[
                    ForeignKey("a", "x", "id"),
                    ForeignKey("a", "y", "id"),
                ],
            )

    def test_foreign_key_for(self):
        table = make_screening_table()
        fk = table.foreign_key_for("movie_id")
        assert fk is not None and fk.target_table == "movie"
        assert table.foreign_key_for("screening_id") is None

    def test_column_names_order(self):
        assert make_movie_table().column_names == ("movie_id", "title")


class TestDatabaseSchema:
    def test_valid_fk_passes(self):
        schema = DatabaseSchema([make_movie_table(), make_screening_table()])
        schema.validate()

    def test_fk_to_unknown_table(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([make_screening_table()])

    def test_fk_to_unknown_column(self):
        bad = TableSchema(
            "screening",
            [Column("screening_id", DataType.INTEGER),
             Column("movie_id", DataType.INTEGER)],
            primary_key="screening_id",
            foreign_keys=[ForeignKey("movie_id", "movie", "nope")],
        )
        with pytest.raises(SchemaError):
            DatabaseSchema([make_movie_table(), bad])

    def test_fk_must_hit_key_column(self):
        bad = TableSchema(
            "screening",
            [Column("screening_id", DataType.INTEGER),
             Column("title", DataType.TEXT)],
            primary_key="screening_id",
            foreign_keys=[ForeignKey("title", "movie", "title")],
        )
        with pytest.raises(SchemaError):
            DatabaseSchema([make_movie_table(), bad])

    def test_fk_type_mismatch(self):
        bad = TableSchema(
            "screening",
            [Column("screening_id", DataType.INTEGER),
             Column("movie_id", DataType.TEXT)],
            primary_key="screening_id",
            foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
        )
        with pytest.raises(SchemaError):
            DatabaseSchema([make_movie_table(), bad])

    def test_duplicate_table_rejected(self):
        schema = DatabaseSchema([make_movie_table()])
        with pytest.raises(SchemaError):
            schema.add_table(make_movie_table())

    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            DatabaseSchema([]).table("nope")

    def test_referencing_tables(self):
        schema = DatabaseSchema([make_movie_table(), make_screening_table()])
        refs = schema.referencing_tables("movie")
        assert [(name, fk.column) for name, fk in refs] == [
            ("screening", "movie_id")
        ]
        assert schema.referencing_tables("screening") == []

    def test_iteration_and_contains(self):
        schema = DatabaseSchema([make_movie_table(), make_screening_table()])
        assert "movie" in schema
        assert sorted(t.name for t in schema) == ["movie", "screening"]
