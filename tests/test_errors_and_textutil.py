"""Tests for the exception hierarchy and remaining text utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import errors
from repro.textutil import damerau_levenshtein, levenshtein


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.DatabaseError,
            errors.SchemaError,
            errors.TypeMismatchError,
            errors.ConstraintViolation,
            errors.UnknownTableError,
            errors.UnknownColumnError,
            errors.TransactionError,
            errors.ProcedureError,
            errors.QueryError,
            errors.AnnotationError,
            errors.ExtractionError,
            errors.SynthesisError,
            errors.TemplateError,
            errors.NLUError,
            errors.NotFittedError,
            errors.DialogueError,
            errors.PolicyError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_db_errors_grouped(self):
        for subclass in (errors.SchemaError, errors.ConstraintViolation,
                         errors.TransactionError, errors.ProcedureError):
            assert issubclass(subclass, errors.DatabaseError)

    def test_single_catch_point(self):
        try:
            raise errors.TemplateError("bad template")
        except errors.ReproError as exc:
            assert "bad template" in str(exc)


short = st.text(alphabet="abcd", max_size=8)


class TestDamerau:
    def test_transposition_is_one_edit(self):
        assert damerau_levenshtein("gump", "gmup") == 1
        assert levenshtein("gump", "gmup") == 2

    def test_identical(self):
        assert damerau_levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert damerau_levenshtein("", "abc") == 3
        assert damerau_levenshtein("abc", "") == 3

    def test_substitution(self):
        assert damerau_levenshtein("cat", "bat") == 1

    @given(short, short)
    @settings(max_examples=80)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short, short)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(short)
    def test_identity(self, a):
        assert damerau_levenshtein(a, a) == 0

    @given(short, short)
    @settings(max_examples=80)
    def test_zero_iff_equal(self, a, b):
        assert (damerau_levenshtein(a, b) == 0) == (a == b)
