"""Tests for the command-line interface (fast commands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_snapshot_command(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        assert main(["snapshot", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out
        from repro.db import load_database

        database = load_database(str(path))
        assert database.count("movie") > 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
