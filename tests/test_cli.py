"""Tests for the command-line interface (fast commands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_snapshot_command(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        assert main(["snapshot", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out
        from repro.db import load_database

        database = load_database(str(path))
        assert database.count("movie") > 0

    def test_explain_single_query(self, capsys):
        status = main(
            ["explain", "screening", "--where", "screening_id=5"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "IndexEq on screening using screening_id" in out

    def test_explain_range_order_limit(self, capsys):
        status = main(
            ["explain", "screening", "--where", "date>=2022-03-27",
             "--order-by", "date", "--limit", "3"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "IndexRange on screening using date" in out
        assert "Limit 3" in out

    def test_explain_count(self, capsys):
        status = main(
            ["explain", "screening", "--where", "room='room A'", "--count"]
        )
        assert status == 0
        assert "CountOnly" in capsys.readouterr().out

    def test_explain_showcase_without_table(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert out.count("$ python -m repro explain") >= 3
        assert "HashJoin" in out or "IndexNestedLoopJoin" in out

    def test_explain_bad_join_spec(self, capsys):
        assert main(["explain", "screening", "--join", "nonsense"]) == 2

    def test_explain_bad_condition_exits_cleanly(self, capsys):
        status = main(["explain", "screening", "--where", "date 2022-03-27"])
        assert status == 2
        assert "cannot parse condition" in capsys.readouterr().out

    def test_explain_grouped_aggregate(self, capsys):
        status = main(
            ["explain", "reservation", "--agg", "booked=sum:no_tickets",
             "--group-by", "screening_id"]
        )
        assert status == 0
        out = capsys.readouterr().out
        # Whole-table single-key group-by walks the hash-index buckets.
        assert "IndexGroupedAggScan on reservation" in out
        assert "[booked=sum(no_tickets)]" in out
        assert "group by [screening_id]" in out

    def test_explain_filtered_grouped_aggregate(self, capsys):
        status = main(
            ["explain", "reservation", "--where", "no_tickets>=2",
             "--agg", "booked=sum:no_tickets",
             "--group-by", "screening_id"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "HashAggregate [booked=sum(no_tickets)]" in out
        assert "group by [screening_id]" in out

    def test_explain_aggregate_pushdown_below_join(self, capsys):
        status = main(
            ["explain", "reservation",
             "--join", "screening_id:screening:screening_id",
             "--agg", "booked=sum:no_tickets",
             "--group-by", "screening_id"]
        )
        assert status == 0
        out = capsys.readouterr().out
        # The NOT NULL FK join cannot change the aggregate: elided.
        assert "IndexGroupedAggScan" in out
        assert "[join screening elided by fk]" in out
        assert "HashJoin" not in out and "IndexNestedLoopJoin" not in out

    def test_explain_aggregate_semi_join_pushdown(self, capsys):
        status = main(
            ["explain", "movie",
             "--join", "language_id:language:language_id",
             "--agg", "n=count", "--group-by", "language_id"]
        )
        assert status == 0
        out = capsys.readouterr().out
        # Nullable FK: not elidable, but the group-keyed unique join
        # collapses to one probe per group above the aggregate.
        assert "GroupSemiJoin language on" in out
        assert "HashAggregate [n=count(*)] group by [language_id]" in out
        assert "HashJoin" not in out and "IndexNestedLoopJoin" not in out

    def test_explain_annotates_execution_mode(self, capsys):
        status = main(
            ["explain", "reservation", "--where", "no_tickets>=2",
             "--agg", "booked=sum:no_tickets",
             "--group-by", "screening_id", "--having", "booked>=10"]
        )
        assert status == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        having = next(l for l in lines if "Filter booked >= 10" in l)
        agg = next(l for l in lines if "HashAggregate" in l)
        assert having.endswith("[row]")
        assert agg.endswith("[batch]")

    def test_explain_index_agg_scan(self, capsys):
        status = main(
            ["explain", "screening", "--agg", "lo=min:price",
             "--agg", "n=count"]
        )
        assert status == 0
        assert "IndexAggScan on screening" in capsys.readouterr().out

    def test_explain_bad_agg_exits_cleanly(self, capsys):
        assert main(["explain", "screening", "--agg", "x=median:price"]) == 2
        assert "bad --agg" in capsys.readouterr().out
        assert main(["explain", "screening", "--agg", "n=count:price"]) == 2

    def test_explain_group_by_without_agg_rejected(self, capsys):
        assert main(["explain", "screening", "--group-by", "room"]) == 2
        assert "--group-by requires" in capsys.readouterr().out

    def test_explain_agg_with_count_rejected(self, capsys):
        status = main(
            ["explain", "screening", "--agg", "n=count", "--count"]
        )
        assert status == 2
        assert "--count cannot be combined" in capsys.readouterr().out

    def test_explain_showcase_covers_aggregates_and_reordering(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "HashAggregate" in out
        assert "IndexAggScan" in out
        assert "[reordered]" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestExplainConditionParsing:
    def test_pipe_splits_into_disjunction(self):
        from repro.cli import _parse_explain_condition
        from repro.db.query import Or

        predicate = _parse_explain_condition("room='room A'|movie_id=3")
        assert isinstance(predicate, Or)
        assert len(predicate.parts) == 2

    def test_quoted_pipe_is_a_value_not_a_split(self):
        from repro.cli import _parse_explain_condition
        from repro.db.query import Comparison

        predicate = _parse_explain_condition("title~'rock|roll'")
        assert isinstance(predicate, Comparison)
        assert predicate.op == "contains"
        assert predicate.value == "rock|roll"
