"""Tests for the end-to-end training-data generation pipeline."""

import pytest

from repro.datasets import movie_templates
from repro.errors import SynthesisError, TemplateError
from repro.synthesis import GenerationConfig, TrainingDataGenerator


@pytest.fixture()
def generator(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    generator = TrainingDataGenerator(
        database, catalog, tasks,
        GenerationConfig(samples_per_template=3),
    )
    generator.add_templates("inform", ["the title is {movie_title}"])
    generator.add_templates(
        "request_ticket_reservation", ["i want {ticket_amount} tickets"]
    )
    return generator


class TestPipeline:
    def test_requires_tasks(self, movie_tasks):
        database, annotations, catalog, __ = movie_tasks
        with pytest.raises(SynthesisError):
            TrainingDataGenerator(database, catalog, [])

    def test_bad_template_rejected_at_registration(self, generator):
        with pytest.raises(TemplateError):
            generator.add_templates("inform", ["bad {ghost_slot}"])

    def test_nlu_generation_includes_generic_intents(self, generator):
        dataset = generator.generate_nlu()
        intents = set(dataset.intents())
        assert {"greet", "goodbye", "affirm", "deny", "abort",
                "dont_know", "inform"} <= intents

    def test_nlu_generation_includes_domain_intents(self, generator):
        dataset = generator.generate_nlu()
        assert "request_ticket_reservation" in dataset.intents()

    def test_paraphrasing_augments(self, movie_tasks):
        database, annotations, catalog, tasks = movie_tasks
        with_p = TrainingDataGenerator(
            database, catalog, tasks,
            GenerationConfig(samples_per_template=3, use_paraphrasing=True),
        )
        without_p = TrainingDataGenerator(
            database, catalog, tasks,
            GenerationConfig(samples_per_template=3, use_paraphrasing=False),
        )
        for g in (with_p, without_p):
            g.add_templates("inform", ["the title is {movie_title}"])
        assert len(with_p.generate_nlu()) > len(without_p.generate_nlu())

    def test_flow_generation(self, generator):
        flows = generator.generate_flows()
        assert len(flows) == 300  # default SelfPlayConfig
        assert "identify_screening" in flows.agent_actions()

    def test_full_movie_template_catalog_validates(self, movie_tasks):
        database, annotations, catalog, tasks = movie_tasks
        generator = TrainingDataGenerator(database, catalog, tasks)
        for intent, texts in movie_templates().items():
            generator.add_templates(intent, texts)
        assert len(generator.library) > 50
