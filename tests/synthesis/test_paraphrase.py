"""Tests (incl. property-based) for the rule-based paraphraser."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.synthesis import ParaphraseConfig, Paraphraser

PLACEHOLDER_RE = re.compile(r"\{[a-z_][a-z0-9_]*\}")


class TestConfig:
    def test_negative_variants_rejected(self):
        with pytest.raises(SynthesisError):
            ParaphraseConfig(variants_per_template=-1)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(SynthesisError):
            ParaphraseConfig(synonym_probability=1.5)


class TestVariants:
    def test_produces_distinct_variants(self):
        paraphraser = Paraphraser(ParaphraseConfig(variants_per_template=4))
        variants = paraphraser.variants("i want to buy {ticket_amount} tickets")
        assert len(variants) >= 1
        assert len(set(variants)) == len(variants)
        assert "i want to buy {ticket_amount} tickets" not in variants

    def test_placeholders_preserved(self):
        paraphraser = Paraphraser(ParaphraseConfig(variants_per_template=6))
        original = "i want to watch {movie_title} on {screening_date}"
        for variant in paraphraser.variants(original):
            assert sorted(PLACEHOLDER_RE.findall(variant)) == sorted(
                PLACEHOLDER_RE.findall(original)
            )

    def test_zero_variants_config(self):
        paraphraser = Paraphraser(ParaphraseConfig(variants_per_template=0))
        assert paraphraser.variants("i want tickets") == []

    def test_deterministic_under_seed(self):
        a = Paraphraser(ParaphraseConfig(seed=3)).variants("i want to buy tickets")
        b = Paraphraser(ParaphraseConfig(seed=3)).variants("i want to buy tickets")
        assert a == b

    def test_typo_never_corrupts_placeholder(self):
        config = ParaphraseConfig(
            variants_per_template=8,
            synonym_probability=0.0,
            wrapper_probability=0.0,
            contraction_probability=0.0,
            drop_probability=0.0,
            typo_probability=1.0,
        )
        paraphraser = Paraphraser(config)
        original = "book {movie_title} now please everyone"
        for variant in paraphraser.variants(original):
            assert "{movie_title}" in variant

    def test_synonym_substitution_applies(self):
        config = ParaphraseConfig(
            variants_per_template=5,
            synonym_probability=1.0,
            wrapper_probability=0.0,
            contraction_probability=0.0,
            drop_probability=0.0,
        )
        variants = Paraphraser(config).variants("i want to buy tickets")
        assert variants, "expected at least one paraphrase"
        assert any("purchase" in v or "get" in v or "book" in v
                   or "would like" in v or "need" in v or "plan" in v
                   or "wish" in v or "seats" in v or "places" in v
                   for v in variants)


word = st.text(alphabet="abcdefghij ", min_size=1, max_size=30).map(
    lambda s: " ".join(s.split()) or "word"
)


class TestParaphraseProperties:
    @given(word)
    @settings(max_examples=40)
    def test_variants_never_empty_strings(self, text):
        paraphraser = Paraphraser(ParaphraseConfig(variants_per_template=3))
        for variant in paraphraser.variants(text):
            assert variant.strip()

    @given(word)
    @settings(max_examples=40)
    def test_no_double_spaces(self, text):
        paraphraser = Paraphraser(
            ParaphraseConfig(variants_per_template=3, drop_probability=0.8)
        )
        for variant in paraphraser.variants(text):
            assert "  " not in variant

    @given(st.integers(0, 10))
    def test_respects_variant_budget(self, budget):
        paraphraser = Paraphraser(ParaphraseConfig(variants_per_template=budget))
        variants = paraphraser.variants("i want to buy tickets please")
        assert len(variants) <= budget
