"""Tests for templates and the slot vocabulary."""

import pytest

from repro.annotation import TaskExtractor
from repro.db import Catalog, ColumnRef
from repro.errors import TemplateError
from repro.synthesis import (
    SlotVocabulary,
    Template,
    TemplateLibrary,
    slot_name_for,
)


class TestSlotNameFor:
    def test_prefixes_table(self):
        assert slot_name_for(ColumnRef("movie", "title")) == "movie_title"

    def test_keeps_descriptive_column(self):
        assert slot_name_for(ColumnRef("movie", "movie_id")) == "movie_id"


@pytest.fixture()
def vocabulary(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    return SlotVocabulary.from_tasks(tasks, catalog)


class TestVocabulary:
    def test_value_slots_present(self, vocabulary):
        assert "ticket_amount" in vocabulary

    def test_attribute_slots_present(self, vocabulary):
        assert "movie_title" in vocabulary
        assert "customer_first_name" in vocabulary

    def test_attribute_mapping(self, vocabulary):
        assert vocabulary.attribute_for("movie_title") == ColumnRef(
            "movie", "title"
        )
        assert vocabulary.attribute_for("ticket_amount") is None

    def test_reverse_mapping(self, vocabulary):
        assert (
            vocabulary.slot_for_attribute(ColumnRef("movie", "title"))
            == "movie_title"
        )
        assert vocabulary.slot_for_attribute(ColumnRef("movie", "ghost")) is None

    def test_unknown_slot_raises(self, vocabulary):
        with pytest.raises(TemplateError):
            vocabulary.source("ghost_slot")


class TestTemplate:
    def test_placeholders_extracted(self):
        template = Template("book {n} seats for {movie_title}", "request")
        assert template.placeholders == ("n", "movie_title")

    def test_empty_rejected(self):
        with pytest.raises(TemplateError):
            Template("   ", "x")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(TemplateError):
            Template("hello {title", "x")
        with pytest.raises(TemplateError):
            Template("hello title}", "x")

    def test_validate_against_vocabulary(self, vocabulary):
        good = Template("i want {movie_title}", "inform")
        good.validate(vocabulary)
        bad = Template("i want {ghost_slot}", "inform")
        with pytest.raises(TemplateError):
            bad.validate(vocabulary)


class TestTemplateLibrary:
    def test_generic_intents_preloaded(self, vocabulary):
        library = TemplateLibrary(vocabulary)
        assert "greet" in library.intents()
        assert "abort" in library.intents()
        assert len(library.by_intent("affirm")) >= 5

    def test_add_validates(self, vocabulary):
        library = TemplateLibrary(vocabulary)
        library.add("the title is {movie_title}", "inform")
        with pytest.raises(TemplateError):
            library.add("bad {ghost}", "inform")

    def test_add_many(self, vocabulary):
        library = TemplateLibrary(vocabulary)
        before = len(library)
        library.add_many(["a", "b"], "inform")
        assert len(library) == before + 2
