"""Tests for dialogue self-play and user profiles."""

import pytest

from repro.dialogue import acts
from repro.errors import SynthesisError
from repro.synthesis import (
    SelfPlayConfig,
    SelfPlaySimulator,
    UserProfile,
)


@pytest.fixture()
def tasks(movie_tasks):
    return movie_tasks[3]


class TestConfig:
    def test_zero_flows_rejected(self):
        with pytest.raises(SynthesisError):
            SelfPlayConfig(n_flows=0)

    def test_empty_profiles_rejected(self):
        with pytest.raises(SynthesisError):
            SelfPlayConfig(profiles=())

    def test_bad_probability_rejected(self):
        with pytest.raises(SynthesisError):
            UserProfile("p", abort_probability=1.2)


class TestSimulation:
    def test_generates_requested_count(self, tasks):
        flows = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=50)).run()
        assert len(flows) == 50

    def test_deterministic_under_seed(self, tasks):
        a = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=20, seed=9)).run()
        b = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=20, seed=9)).run()
        assert [f.to_dict() for f in a] == [f.to_dict() for f in b]

    def test_requires_tasks(self):
        with pytest.raises(SynthesisError):
            SelfPlaySimulator([])

    def test_flows_alternate_reasonably(self, tasks):
        flows = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=30)).run()
        for flow in flows:
            speakers = {t.speaker for t in flow.turns}
            assert speakers <= {"user", "agent"}
            # every flow ends with the agent saying goodbye
            assert flow.turns[-1].action == acts.AGENT_GOODBYE

    def test_cooperative_flow_contains_full_pipeline(self, tasks):
        profile = UserProfile("robot", greet_probability=0.0,
                              thank_probability=0.0, abort_probability=0.0,
                              deny_at_confirm_probability=0.0,
                              second_task_probability=0.0)
        config = SelfPlayConfig(n_flows=10, profiles=((profile, 1.0),))
        flows = SelfPlaySimulator(tasks, config).run()
        for flow in flows:
            actions = [t.action for t in flow.turns]
            assert acts.AGENT_CONFIRM in actions
            assert acts.AGENT_EXECUTE in actions
            assert acts.AGENT_SUCCESS in actions

    def test_aborting_profile_generates_aborts(self, tasks):
        profile = UserProfile("quitter", abort_probability=1.0,
                              retry_after_abort_probability=0.0)
        config = SelfPlayConfig(n_flows=10, profiles=((profile, 1.0),))
        flows = SelfPlaySimulator(tasks, config).run()
        assert all(
            acts.USER_ABORT in [t.action for t in flow.turns] for flow in flows
        )
        assert all(
            acts.AGENT_EXECUTE not in [t.action for t in flow.turns]
            for flow in flows
        )

    def test_denying_profile_restarts(self, tasks):
        profile = UserProfile("fussy", deny_at_confirm_probability=1.0,
                              abort_probability=0.0)
        config = SelfPlayConfig(n_flows=5, profiles=((profile, 1.0),))
        flows = SelfPlaySimulator(tasks, config).run()
        for flow in flows:
            actions = [t.action for t in flow.turns]
            assert acts.AGENT_RESTART in actions
            # the restart is followed by a second confirm and execution
            assert actions.count(acts.AGENT_CONFIRM) >= 2
            assert acts.AGENT_EXECUTE in actions

    def test_identify_actions_derived_from_tasks(self, tasks):
        flows = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=80)).run()
        actions = set(flows.agent_actions())
        assert "identify_customer" in actions
        assert "identify_screening" in actions

    def test_decision_points_nonempty(self, tasks):
        flows = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=10)).run()
        assert len(flows.decision_points()) > 10
