"""Tests for template filling with database values."""

import pytest

from repro.db import Catalog
from repro.errors import SynthesisError
from repro.synthesis import SlotVocabulary, Template, TemplateFiller


@pytest.fixture()
def filler(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    vocabulary = SlotVocabulary.from_tasks(tasks, catalog)
    return database, TemplateFiller(database, vocabulary, seed=1)


class TestFilling:
    def test_fill_produces_examples(self, filler):
        __, f = filler
        template = Template("the movie title is {movie_title}", "inform")
        examples = f.fill(template, n_samples=5)
        assert 1 <= len(examples) <= 5
        for example in examples:
            assert example.intent == "inform"

    def test_spans_are_exact(self, filler):
        __, f = filler
        template = Template("i want {ticket_amount} tickets for {movie_title}",
                            "request_ticket_reservation")
        for example in f.fill(template, n_samples=8):
            for span in example.slots:
                assert example.text[span.start:span.end] == span.value

    def test_values_come_from_database(self, filler):
        database, f = filler
        titles = {row["title"] for row in database.rows("movie")}
        template = Template("{movie_title}", "inform")
        for example in f.fill(template, n_samples=10, lowercase_fraction=0.0):
            assert example.slot_values()["movie_title"] in titles

    def test_plain_slot_uses_synthetic_pool(self, filler):
        __, f = filler
        template = Template("i need {ticket_amount} tickets", "inform")
        for example in f.fill(template, n_samples=5, lowercase_fraction=0.0):
            assert example.slot_values()["ticket_amount"].isdigit()

    def test_no_placeholder_template(self, filler):
        __, f = filler
        examples = f.fill(Template("hello there", "greet"), n_samples=3)
        assert len(examples) == 1  # deduplicated
        assert examples[0].slots == ()

    def test_lowercase_augmentation(self, filler):
        __, f = filler
        template = Template("the title is {movie_title}", "inform")
        examples = f.fill(template, n_samples=12, lowercase_fraction=1.0)
        assert all(e.text == e.text.lower() for e in examples)
        for example in examples:
            for span in example.slots:
                assert example.text[span.start:span.end] == span.value

    def test_examples_deduplicated(self, filler):
        __, f = filler
        template = Template("on {screening_date}", "inform")
        examples = f.fill(template, n_samples=20)
        texts = [e.text for e in examples]
        assert len(texts) == len(set(texts))

    def test_unknown_slot_raises(self, filler):
        __, f = filler
        with pytest.raises(Exception):
            f.fill(Template("{ghost_slot}", "inform"))

    def test_deterministic_under_seed(self, movie_tasks):
        database, annotations, catalog, tasks = movie_tasks
        vocabulary = SlotVocabulary.from_tasks(tasks, catalog)
        template = Template("see {movie_title}", "inform")
        a = TemplateFiller(database, vocabulary, seed=5).fill(template, 5)
        b = TemplateFiller(database, vocabulary, seed=5).fill(template, 5)
        assert [e.text for e in a] == [e.text for e in b]
