"""Tests for corpus data structures."""

import pytest

from repro.errors import SynthesisError
from repro.synthesis import (
    DialogueFlow,
    FlowDataset,
    FlowTurn,
    NLUDataset,
    NLUExample,
    SlotSpan,
)


class TestSlotSpan:
    def test_valid(self):
        span = SlotSpan("title", "Heat", 0, 4)
        assert span.value == "Heat"

    def test_bad_range_rejected(self):
        with pytest.raises(SynthesisError):
            SlotSpan("title", "x", 3, 3)
        with pytest.raises(SynthesisError):
            SlotSpan("title", "x", -1, 2)


class TestNLUExample:
    def test_span_must_match_text(self):
        with pytest.raises(SynthesisError):
            NLUExample("see Heat", "inform", (SlotSpan("t", "Cold", 4, 8),))

    def test_span_must_fit_text(self):
        with pytest.raises(SynthesisError):
            NLUExample("short", "inform", (SlotSpan("t", "xxxxx", 3, 8),))

    def test_slot_values(self):
        example = NLUExample(
            "see Heat", "inform", (SlotSpan("title", "Heat", 4, 8),)
        )
        assert example.slot_values() == {"title": "Heat"}

    def test_dict_roundtrip(self):
        example = NLUExample(
            "see Heat", "inform", (SlotSpan("title", "Heat", 4, 8),)
        )
        assert NLUExample.from_dict(example.to_dict()) == example


class TestNLUDataset:
    def make(self, n=10):
        dataset = NLUDataset()
        for i in range(n):
            intent = "a" if i % 2 == 0 else "b"
            dataset.add(NLUExample(f"text {i}", intent))
        return dataset

    def test_len_iter_index(self):
        dataset = self.make(4)
        assert len(dataset) == 4
        assert dataset[0].text == "text 0"
        assert len(list(dataset)) == 4

    def test_intents_sorted(self):
        assert self.make().intents() == ["a", "b"]

    def test_slot_names(self):
        dataset = NLUDataset(
            [NLUExample("see Heat", "i", (SlotSpan("title", "Heat", 4, 8),))]
        )
        assert dataset.slot_names() == ["title"]

    def test_split_is_deterministic(self):
        dataset = self.make(20)
        a1, b1 = dataset.split(0.25, seed=3)
        a2, b2 = dataset.split(0.25, seed=3)
        assert [e.text for e in a1] == [e.text for e in a2]
        assert [e.text for e in b1] == [e.text for e in b2]

    def test_split_partitions(self):
        dataset = self.make(20)
        train, test = dataset.split(0.25)
        assert len(train) + len(test) == 20
        assert {e.text for e in train}.isdisjoint({e.text for e in test})

    def test_split_stratified(self):
        dataset = self.make(20)
        __, test = dataset.split(0.2)
        assert {e.intent for e in test} == {"a", "b"}

    def test_bad_fraction_rejected(self):
        with pytest.raises(SynthesisError):
            self.make().split(0.0)

    def test_json_roundtrip(self):
        dataset = NLUDataset(
            [NLUExample("see Heat", "i", (SlotSpan("title", "Heat", 4, 8),))]
        )
        restored = NLUDataset.from_json(dataset.to_json())
        assert restored.examples == dataset.examples


class TestFlows:
    def make_flow(self):
        return DialogueFlow(
            task="book",
            turns=(
                FlowTurn("user", "request_book"),
                FlowTurn("agent", "identify_item"),
                FlowTurn("agent", "confirm"),
                FlowTurn("user", "affirm"),
                FlowTurn("agent", "execute"),
            ),
        )

    def test_bad_speaker_rejected(self):
        with pytest.raises(SynthesisError):
            FlowTurn("robot", "x")

    def test_decision_points(self):
        points = self.make_flow().agent_decision_points()
        assert len(points) == 3
        history, action = points[0]
        assert history == ("user:request_book",)
        assert action == "identify_item"

    def test_decision_point_histories_grow(self):
        points = self.make_flow().agent_decision_points()
        assert len(points[2][0]) == 4

    def test_dict_roundtrip(self):
        flow = self.make_flow()
        assert DialogueFlow.from_dict(flow.to_dict()) == flow

    def test_dataset_agent_actions(self):
        dataset = FlowDataset([self.make_flow()])
        assert dataset.agent_actions() == ["confirm", "execute", "identify_item"]

    def test_dataset_json_roundtrip(self):
        dataset = FlowDataset([self.make_flow()])
        restored = FlowDataset.from_json(dataset.to_json())
        assert restored.flows == dataset.flows
