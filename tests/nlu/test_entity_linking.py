"""Tests for entity linking against database values."""

import pytest

from repro.db import Catalog
from repro.nlu import EntityLinker
from repro.synthesis import SlotVocabulary


@pytest.fixture()
def linker(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    vocabulary = SlotVocabulary.from_tasks(tasks, catalog)
    return database, EntityLinker(database, vocabulary)


class TestTextLinking:
    def test_exact_title(self, linker):
        database, lk = linker
        title = database.rows("movie")[0]["title"]
        linked = lk.link("movie_title", title)
        assert linked is not None
        assert linked.value == title
        assert not linked.corrected

    def test_case_insensitive(self, linker):
        database, lk = linker
        title = database.rows("movie")[0]["title"]
        linked = lk.link("movie_title", title.lower())
        assert linked is not None
        assert linked.value == title

    def test_misspelling_corrected(self, linker):
        __, lk = linker
        linked = lk.link("movie_title", "forest gump")
        assert linked is not None
        assert linked.value == "Forrest Gump"
        assert linked.corrected

    def test_garbage_returns_none(self, linker):
        __, lk = linker
        assert lk.link("movie_title", "qqqqqqqqqqqq") is None

    def test_city_linking(self, linker):
        __, lk = linker
        linked = lk.link("customer_city", "darmstadt")
        # Darmstadt may or may not be in the small fixture; either None or
        # a proper city string is acceptable, but never an exception.
        if linked is not None:
            assert isinstance(linked.value, str)


class TestTypedLinking:
    def test_integer(self, linker):
        __, lk = linker
        linked = lk.link("ticket_amount", "4")
        assert linked is not None and linked.value == 4

    def test_integer_embedded_in_noise(self, linker):
        __, lk = linker
        linked = lk.link("ticket_amount", "4 tickets please")
        assert linked is not None and linked.value == 4

    def test_word_number(self, linker):
        __, lk = linker
        linked = lk.link("ticket_amount", "four")
        assert linked is not None and linked.value == 4

    def test_date(self, linker):
        import datetime as dt

        __, lk = linker
        linked = lk.link("screening_date", "2022-03-28")
        assert linked is not None
        assert linked.value == dt.date(2022, 3, 28)

    def test_date_inside_sentence(self, linker):
        __, lk = linker
        linked = lk.link("screening_date", "on the 2022-03-28 maybe")
        assert linked is not None

    def test_unparseable_returns_none(self, linker):
        __, lk = linker
        assert lk.link("ticket_amount", "lots and lots") is None


class TestInvalidation:
    def test_new_value_found_after_invalidate(self, linker):
        database, lk = linker
        assert lk.link("movie_title", "Zebra Quest") is None
        database.insert(
            "movie",
            {"movie_id": 999, "title": "Zebra Quest", "genre": "drama",
             "year": 2020, "duration_minutes": 100,
             "language_id": 1},
        )
        lk.invalidate()
        linked = lk.link("movie_title", "Zebra Quest")
        assert linked is not None and linked.value == "Zebra Quest"
