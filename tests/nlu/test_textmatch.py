"""Tests (incl. property-based) for string similarity primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textutil import (
    best_match,
    levenshtein,
    normalized_edit_similarity,
    trigram_similarity,
    trigrams,
)

short_text = st.text(alphabet="abcdef ", max_size=12)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_misspelled_title(self):
        assert levenshtein("forest gump", "forrest gump") == 1

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestNormalizedSimilarity:
    def test_identical_is_one(self):
        assert normalized_edit_similarity("abc", "abc") == 1.0

    def test_empty_pair_is_one(self):
        assert normalized_edit_similarity("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert normalized_edit_similarity("aaa", "bbb") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_edit_similarity(a, b) <= 1.0


class TestTrigrams:
    def test_padding(self):
        grams = trigrams("ab")
        assert "  a" in grams

    def test_empty(self):
        assert trigrams("") == set()

    def test_similarity_identical(self):
        assert trigram_similarity("movie", "movie") == 1.0

    def test_similarity_disjoint(self):
        assert trigram_similarity("aaa", "zzz") == 0.0

    def test_both_empty(self):
        assert trigram_similarity("", "") == 1.0

    def test_one_empty(self):
        assert trigram_similarity("abc", "") == 0.0


class TestBestMatch:
    TITLES = ["Forrest Gump", "The Silent Horizon", "Roman Holiday"]

    def test_exact_match_shortcircuits(self):
        assert best_match("forrest gump", self.TITLES) == ("Forrest Gump", 1.0)

    def test_misspelling_matches(self):
        result = best_match("forest gump", self.TITLES)
        assert result is not None
        assert result[0] == "Forrest Gump"

    def test_below_threshold_returns_none(self):
        assert best_match("zzzzzz", self.TITLES, threshold=0.9) is None

    def test_empty_haystack(self):
        assert best_match("anything", []) is None

    def test_score_monotonic_with_similarity(self):
        close = best_match("roman holida", self.TITLES, threshold=0.0)
        far = best_match("raman haliday", self.TITLES, threshold=0.0)
        assert close is not None and far is not None
        assert close[1] >= far[1]
