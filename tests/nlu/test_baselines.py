"""Tests for the NLU baseline models."""

import pytest

from repro.errors import NLUError, NotFittedError
from repro.nlu import (
    GazetteerSlotBaseline,
    KeywordIntentBaseline,
    MajorityIntentBaseline,
    NearestNeighborIntentBaseline,
)
from repro.synthesis import NLUDataset, NLUExample, SlotSpan


def intent_data():
    examples = []
    for i in range(8):
        examples.append(NLUExample(f"book a flight {i}", "flight"))
        examples.append(NLUExample(f"what is the fare {i}", "airfare"))
    examples.append(NLUExample("extra flight query", "flight"))
    return NLUDataset(examples)


class TestMajority:
    def test_predicts_most_frequent(self):
        model = MajorityIntentBaseline().fit(intent_data())
        assert model.predict_intent("anything at all") == "flight"

    def test_accuracy_equals_majority_share(self):
        data = intent_data()
        model = MajorityIntentBaseline().fit(data)
        assert model.accuracy(data) == pytest.approx(9 / 17)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            MajorityIntentBaseline().predict_intent("x")

    def test_empty_rejected(self):
        with pytest.raises(NLUError):
            MajorityIntentBaseline().fit(NLUDataset())


class TestKeyword:
    def test_learns_discriminative_words(self):
        model = KeywordIntentBaseline().fit(intent_data())
        assert model.predict_intent("book a flight to boston") == "flight"
        assert model.predict_intent("what is the cheapest fare") == "airfare"

    def test_unseen_words_fall_back_to_prior(self):
        model = KeywordIntentBaseline().fit(intent_data())
        assert model.predict_intent("zzz qqq") == "flight"  # majority prior

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            KeywordIntentBaseline().predict_intent("x")


class TestNearestNeighbor:
    def test_memorises_training_examples(self):
        data = intent_data()
        model = NearestNeighborIntentBaseline().fit(data)
        assert model.accuracy(data) == 1.0

    def test_nearby_example_wins(self):
        model = NearestNeighborIntentBaseline().fit(intent_data())
        assert model.predict_intent("book a flight 99") == "flight"

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            NearestNeighborIntentBaseline().predict_intent("x")


class TestGazetteer:
    def fit_model(self):
        data = NLUDataset(
            [
                NLUExample(
                    "fly to boston", "f", (SlotSpan("city", "boston", 7, 13),)
                ),
                NLUExample(
                    "fly to new york", "f", (SlotSpan("city", "new york", 7, 15),)
                ),
            ]
        )
        return GazetteerSlotBaseline().fit(data)

    def test_finds_known_value(self):
        model = self.fit_model()
        spans = model.tag("please go to boston tomorrow")
        assert [(s.name, s.value) for s in spans] == [("city", "boston")]

    def test_longest_match_preferred(self):
        model = self.fit_model()
        spans = model.tag("i want new york please")
        assert spans[0].value == "new york"

    def test_word_alignment_required(self):
        model = self.fit_model()
        # 'boston' inside 'bostonian' must not match
        assert model.tag("the bostonian hotel") == []

    def test_multiple_occurrences(self):
        model = self.fit_model()
        spans = model.tag("boston to boston")
        assert len(spans) == 2

    def test_unknown_value_not_found(self):
        model = self.fit_model()
        assert model.tag("fly to chicago") == []

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            GazetteerSlotBaseline().tag("x")
