"""Tests for the combined NLU pipeline (uses the session-scoped agent)."""

import pytest

from repro.nlu import FALLBACK_INTENT, build_gazetteers
from repro.synthesis import SlotVocabulary


@pytest.fixture(scope="module")
def nlu(trained_agent):
    cat, agent = trained_agent
    return agent.artifacts.nlu


class TestParsing:
    def test_request_intent(self, nlu):
        result = nlu.parse("i want to buy 3 tickets")
        assert result.intent == "request_ticket_reservation"
        assert result.confidence > 0.3

    def test_generic_intents(self, nlu):
        assert nlu.parse("hello").intent == "greet"
        assert nlu.parse("yes please").intent == "affirm"
        assert nlu.parse("no that is wrong").intent == "deny"
        assert nlu.parse("i cannot remember").intent == "dont_know"

    def test_slot_extraction_and_linking(self, nlu):
        result = nlu.parse("i need 5 tickets")
        linked = result.linked_value("ticket_amount")
        assert linked is not None and linked.value == 5

    def test_fallback_on_gibberish(self, nlu):
        result = nlu.parse("qzx vbn mlk jhg")
        # Either a low-confidence fallback or some intent with low confidence;
        # the pipeline must never crash.
        assert result.intent == FALLBACK_INTENT or result.confidence < 0.9

    def test_linked_value_missing_slot(self, nlu):
        result = nlu.parse("hello")
        assert result.linked_value("movie_title") is None

    def test_misspelling_corrected_via_linker(self, nlu):
        result = nlu.parse("i want to watch forest gump")
        linked = result.linked_value("movie_title")
        assert linked is not None
        assert linked.value == "Forrest Gump"
        assert linked.corrected


class TestGazetteers:
    def test_built_from_text_columns(self, trained_agent):
        cat, agent = trained_agent
        gazetteers = build_gazetteers(cat.database, cat.generator.vocabulary)
        assert "movie_title" in gazetteers
        assert "forrest" in gazetteers["movie_title"]

    def test_non_text_slots_excluded(self, trained_agent):
        cat, agent = trained_agent
        gazetteers = build_gazetteers(cat.database, cat.generator.vocabulary)
        assert "ticket_amount" not in gazetteers
