"""Tests for the tokenizer and BIO span conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlu import bio_to_spans, spans_to_bio, tokenize
from repro.synthesis import SlotSpan


class TestTokenize:
    def test_words_and_offsets(self):
        tokens = tokenize("i want 4 tickets")
        assert [t.text for t in tokens] == ["i", "want", "4", "tickets"]
        assert tokens[2].start == 7 and tokens[2].end == 8

    def test_punctuation_separated(self):
        tokens = tokenize("hello, world!")
        assert [t.text for t in tokens] == ["hello", ",", "world", "!"]

    def test_apostrophes_kept(self):
        tokens = tokenize("i don't know")
        assert "don't" in [t.text for t in tokens]

    def test_empty(self):
        assert tokenize("") == []

    def test_offsets_reconstruct_tokens(self):
        text = "The Forrest Gump screening, at 20:30!"
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text


class TestSpansToBio:
    def test_single_token_span(self):
        text = "see Heat now"
        tokens = tokenize(text)
        labels = spans_to_bio(tokens, (SlotSpan("title", "Heat", 4, 8),))
        assert labels == ["O", "B-title", "O"]

    def test_multi_token_span(self):
        text = "see Forrest Gump now"
        tokens = tokenize(text)
        labels = spans_to_bio(tokens, (SlotSpan("title", "Forrest Gump", 4, 16),))
        assert labels == ["O", "B-title", "I-title", "O"]

    def test_multiple_spans(self):
        text = "4 tickets for Heat"
        tokens = tokenize(text)
        spans = (SlotSpan("n", "4", 0, 1), SlotSpan("title", "Heat", 14, 18))
        labels = spans_to_bio(tokens, spans)
        assert labels == ["B-n", "O", "O", "B-title"]

    def test_no_spans_all_outside(self):
        labels = spans_to_bio(tokenize("hello there"), ())
        assert labels == ["O", "O"]


class TestBioToSpans:
    def test_roundtrip_simple(self):
        text = "book Forrest Gump for monday"
        tokens = tokenize(text)
        spans = (
            SlotSpan("title", "Forrest Gump", 5, 17),
            SlotSpan("day", "monday", 22, 28),
        )
        labels = spans_to_bio(tokens, spans)
        recovered = bio_to_spans(text, tokens, labels)
        assert tuple(recovered) == spans

    def test_orphan_i_tag_starts_span(self):
        text = "a b"
        tokens = tokenize(text)
        recovered = bio_to_spans(text, tokens, ["O", "I-x"])
        assert len(recovered) == 1
        assert recovered[0].name == "x"

    def test_adjacent_different_slots(self):
        text = "alice gruber"
        tokens = tokenize(text)
        labels = ["B-first", "B-last"]
        recovered = bio_to_spans(text, tokens, labels)
        assert [s.name for s in recovered] == ["first", "last"]

    def test_span_at_end_closed(self):
        text = "see Heat"
        tokens = tokenize(text)
        recovered = bio_to_spans(text, tokens, ["O", "B-title"])
        assert recovered[0].value == "Heat"


@st.composite
def labelled_texts(draw):
    """Random word sequences with random non-overlapping slot words."""
    n = draw(st.integers(1, 8))
    words = [draw(st.sampled_from(["alpha", "beta", "gamma", "delta", "x1"]))
             for __ in range(n)]
    text = " ".join(words)
    tokens = tokenize(text)
    labels = []
    previous_slot = None
    for __ in tokens:
        choice = draw(st.sampled_from(["O", "B-a", "B-b", "I"]))
        if choice == "I" and previous_slot:
            labels.append(f"I-{previous_slot}")
        elif choice.startswith("B-"):
            labels.append(choice)
            previous_slot = choice[2:]
            continue
        else:
            labels.append("O" if choice == "I" else choice)
        previous_slot = labels[-1][2:] if labels[-1] != "O" else None
    return text, tokens, labels


class TestRoundtripProperties:
    @given(labelled_texts())
    @settings(max_examples=60)
    def test_bio_to_spans_to_bio_is_stable(self, case):
        text, tokens, labels = case
        spans = bio_to_spans(text, tokens, labels)
        relabelled = spans_to_bio(tokens, tuple(spans))
        respanned = bio_to_spans(text, tokens, relabelled)
        assert [(s.name, s.start, s.end) for s in spans] == [
            (s.name, s.start, s.end) for s in respanned
        ]

    @given(labelled_texts())
    @settings(max_examples=60)
    def test_spans_lie_within_text(self, case):
        text, tokens, labels = case
        for span in bio_to_spans(text, tokens, labels):
            assert 0 <= span.start < span.end <= len(text)
            assert text[span.start:span.end] == span.value
