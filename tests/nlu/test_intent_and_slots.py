"""Tests for the intent classifier, slot tagger and featurizer."""

import numpy as np
import pytest

from repro.errors import NLUError, NotFittedError
from repro.nlu import IntentClassifier, NGramFeaturizer, SlotTagger
from repro.synthesis import NLUDataset, NLUExample, SlotSpan


def toy_intent_dataset():
    examples = []
    for i in range(12):
        examples.append(NLUExample(f"book a table number {i}", "book"))
        examples.append(NLUExample(f"cancel my booking {i}", "cancel"))
        examples.append(NLUExample(f"hello there friend {i}", "greet"))
    return NLUDataset(examples)


def toy_slot_dataset():
    examples = []
    cities = ["boston", "denver", "atlanta", "dallas", "memphis", "seattle"]
    for a in cities:
        for b in cities:
            if a == b:
                continue
            text = f"fly from {a} to {b}"
            examples.append(
                NLUExample(
                    text,
                    "flight",
                    (
                        SlotSpan("src", a, 9, 9 + len(a)),
                        SlotSpan("dst", b, 13 + len(a), 13 + len(a) + len(b)),
                    ),
                )
            )
    return NLUDataset(examples)


class TestFeaturizer:
    def test_fit_transform_shape(self):
        featurizer = NGramFeaturizer()
        matrix = featurizer.fit_transform(["a b c", "b c d"])
        assert matrix.shape[0] == 2
        assert matrix.shape[1] == featurizer.n_features

    def test_rows_l2_normalised(self):
        matrix = NGramFeaturizer().fit_transform(["hello world", "bye"])
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_unseen_tokens_ignored(self):
        featurizer = NGramFeaturizer(use_char_trigrams=False)
        featurizer.fit(["aaa bbb"])
        matrix = featurizer.transform(["zzz qqq"])
        assert matrix.sum() == 0.0

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            NGramFeaturizer().transform(["x"])

    def test_max_features_respected(self):
        featurizer = NGramFeaturizer(max_features=5)
        featurizer.fit(["a b c d e f g h i j k"])
        assert featurizer.n_features <= 5


class TestIntentClassifier:
    def test_learns_separable_intents(self):
        dataset = toy_intent_dataset()
        model = IntentClassifier(epochs=30).fit(dataset)
        assert model.accuracy(dataset) == 1.0

    def test_prediction_ranking(self):
        model = IntentClassifier(epochs=30).fit(toy_intent_dataset())
        prediction = model.predict("please book a table")
        assert prediction.intent == "book"
        assert 0.0 < prediction.confidence <= 1.0
        labels = [label for label, __ in prediction.ranking]
        assert sorted(labels) == ["book", "cancel", "greet"]

    def test_probabilities_sum_to_one(self):
        model = IntentClassifier(epochs=10).fit(toy_intent_dataset())
        probabilities = model.predict_proba(["hello", "cancel it"])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(NLUError):
            IntentClassifier().fit(NLUDataset())

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IntentClassifier().predict("x")

    def test_labels_sorted(self):
        model = IntentClassifier(epochs=5).fit(toy_intent_dataset())
        assert model.labels == ["book", "cancel", "greet"]

    def test_deterministic_training(self):
        data = toy_intent_dataset()
        a = IntentClassifier(epochs=10, seed=3).fit(data)
        b = IntentClassifier(epochs=10, seed=3).fit(data)
        assert np.allclose(a.predict_proba(["hello"]), b.predict_proba(["hello"]))


class TestSlotTagger:
    def test_learns_positional_slots(self):
        dataset = toy_slot_dataset()
        tagger = SlotTagger(epochs=5).fit(dataset)
        spans = tagger.tag("fly from boston to dallas")
        values = {s.name: s.value for s in spans}
        assert values == {"src": "boston", "dst": "dallas"}

    def test_generalises_to_unseen_value_in_context(self):
        dataset = toy_slot_dataset()
        tagger = SlotTagger(epochs=5).fit(dataset)
        spans = tagger.tag("fly from boston to phoenix")
        assert any(s.name == "src" and s.value == "boston" for s in spans)

    def test_gazetteer_feature_helps_unseen_casing(self):
        dataset = toy_slot_dataset()
        gazetteers = {"src": frozenset({"boston", "phoenix"}),
                      "dst": frozenset({"dallas", "phoenix"})}
        tagger = SlotTagger(epochs=5, gazetteers=gazetteers).fit(dataset)
        spans = tagger.tag("fly from boston to dallas")
        assert {s.name for s in spans} == {"src", "dst"}

    def test_empty_text(self):
        tagger = SlotTagger(epochs=2).fit(toy_slot_dataset())
        assert tagger.tag("") == []

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SlotTagger().tag("x")

    def test_empty_dataset_rejected(self):
        with pytest.raises(NLUError):
            SlotTagger().fit(NLUDataset())

    def test_labels_include_bio_variants(self):
        tagger = SlotTagger(epochs=2).fit(toy_slot_dataset())
        assert "B-src" in tagger.labels
        assert "O" in tagger.labels

    def test_predicted_spans_match_text(self):
        tagger = SlotTagger(epochs=5).fit(toy_slot_dataset())
        text = "fly from memphis to seattle"
        for span in tagger.tag(text):
            assert text[span.start:span.end] == span.value
