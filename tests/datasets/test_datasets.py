"""Tests for the synthetic datasets (movies + ATIS-like)."""

import pytest

from repro.datasets import (
    ATIS_INTENTS,
    AtisConfig,
    MovieConfig,
    build_flight_database,
    build_movie_database,
    generate_cat_corpus,
    generate_gold_corpus,
    movie_templates,
)


class TestMovieDatabase:
    def test_sizes_match_config(self):
        config = MovieConfig(n_customers=30, n_movies=10, n_screenings=20,
                             n_reservations=12, n_actors=8,
                             extra_dimensions=0)
        database, __ = build_movie_database(config)
        assert database.count("customer") == 30
        assert database.count("movie") == 10
        assert database.count("screening") == 20
        assert database.count("reservation") == 12

    def test_deterministic_under_seed(self):
        a, __ = build_movie_database(MovieConfig(seed=5, n_customers=20,
                                                 n_movies=5, n_screenings=10,
                                                 n_reservations=5))
        b, __ = build_movie_database(MovieConfig(seed=5, n_customers=20,
                                                 n_movies=5, n_screenings=10,
                                                 n_reservations=5))
        assert a.rows("customer") == b.rows("customer")
        assert a.rows("screening") == b.rows("screening")

    def test_classic_titles_present(self, movie_db):
        database, __ = movie_db
        titles = {row["title"] for row in database.rows("movie")}
        assert "Forrest Gump" in titles

    def test_extra_dimensions_add_tables(self):
        database, __ = build_movie_database(MovieConfig(extra_dimensions=4))
        assert "studio" in database.table_names
        assert "distributor" in database.table_names
        fk_columns = {
            fk.column
            for fk in database.schema.table("movie").foreign_keys
        }
        assert "studio_id" in fk_columns

    def test_too_many_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MovieConfig(extra_dimensions=99)

    def test_duplicate_customers_create_families(self):
        config = MovieConfig(n_customers=100,
                             duplicate_customer_fraction=0.5)
        database, __ = build_movie_database(config)
        keys = {}
        for row in database.rows("customer"):
            key = (row["last_name"], row["city"], row["street"])
            keys[key] = keys.get(key, 0) + 1
        assert any(count >= 2 for count in keys.values())

    def test_procedures_registered(self, movie_db):
        database, __ = movie_db
        assert set(database.procedures.names()) == {
            "ticket_reservation", "cancel_reservation", "list_screenings",
        }

    def test_ticket_reservation_procedure(self, movie_db):
        database, __ = movie_db
        before = database.count("reservation")
        result = database.procedures.call(
            "ticket_reservation", customer_id=1, screening_id=1,
            ticket_amount=2,
        )
        assert database.count("reservation") == before + 1
        assert result.value["no_tickets"] == 2

    def test_overbooking_rejected(self, movie_db):
        database, __ = movie_db
        from repro.errors import ProcedureError

        with pytest.raises(ProcedureError):
            database.procedures.call(
                "ticket_reservation", customer_id=1, screening_id=1,
                ticket_amount=10_000,
            )

    def test_cancel_reservation_procedure(self, movie_db):
        database, __ = movie_db
        reservation_id = database.rows("reservation")[0]["reservation_id"]
        database.procedures.call("cancel_reservation",
                                 reservation_id=reservation_id)
        assert database.find_one(
            "reservation", "reservation_id", reservation_id
        ) is None

    def test_list_screenings_procedure(self, movie_db):
        database, __ = movie_db
        movie_id = database.rows("screening")[0]["movie_id"]
        result = database.procedures.call("list_screenings", movie_id=movie_id)
        assert all(row["movie_id"] == movie_id for row in result.value)

    def test_genre_skew_changes_distribution(self):
        from collections import Counter

        uniform, __ = build_movie_database(MovieConfig(n_movies=200,
                                                       genre_skew=0.0))
        skewed, __ = build_movie_database(MovieConfig(n_movies=200,
                                                      genre_skew=2.0))
        c_uniform = Counter(r["genre"] for r in uniform.rows("movie"))
        c_skewed = Counter(r["genre"] for r in skewed.rows("movie"))
        assert max(c_skewed.values()) > max(c_uniform.values())

    def test_templates_cover_all_tasks(self):
        templates = movie_templates()
        assert "request_ticket_reservation" in templates
        assert "request_cancel_reservation" in templates
        assert "request_list_screenings" in templates
        assert "inform" in templates


class TestAtis:
    def test_flight_database(self):
        database = build_flight_database()
        assert database.count("city") > 20
        assert database.count("flight") == 300

    def test_gold_corpus_size_and_skew(self):
        corpus = generate_gold_corpus()
        assert len(corpus) == AtisConfig().n_gold
        from collections import Counter

        counts = Counter(e.intent for e in corpus)
        assert counts["atis_flight"] > 0.6 * len(corpus)
        assert set(counts) == {name for name, __ in ATIS_INTENTS}

    def test_gold_spans_valid(self):
        corpus = generate_gold_corpus(config=AtisConfig(n_gold=200))
        for example in corpus:
            for span in example.slots:
                assert example.text[span.start:span.end] == span.value

    def test_cat_corpus_spans_valid(self):
        corpus = generate_cat_corpus(config=AtisConfig())
        assert len(corpus) > 300
        for example in corpus:
            for span in example.slots:
                assert example.text[span.start:span.end] == span.value

    def test_corpora_share_value_vocabulary(self):
        config = AtisConfig(n_gold=400)
        database = build_flight_database(config)
        gold = generate_gold_corpus(database, config)
        cat = generate_cat_corpus(database, config)
        gold_cities = {
            s.value for e in gold for s in e.slots if s.name == "toloc_city"
        }
        cat_cities = {
            s.value for e in cat for s in e.slots if s.name == "toloc_city"
        }
        assert gold_cities & cat_cities

    def test_from_to_cities_differ(self):
        corpus = generate_gold_corpus(config=AtisConfig(n_gold=300))
        for example in corpus:
            values = example.slot_values()
            if "fromloc_city" in values and "toloc_city" in values:
                assert values["fromloc_city"] != values["toloc_city"]

    def test_noise_disabled(self):
        clean = generate_gold_corpus(config=AtisConfig(n_gold=200,
                                                       gold_noise=0.0))
        assert not any(e.text.startswith("uh ") for e in clean)

    def test_deterministic(self):
        a = generate_gold_corpus(config=AtisConfig(n_gold=100))
        b = generate_gold_corpus(config=AtisConfig(n_gold=100))
        assert [e.text for e in a] == [e.text for e in b]

    def test_bad_config_rejected(self):
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            AtisConfig(n_gold=0)
        with pytest.raises(SynthesisError):
            AtisConfig(gold_noise=2.0)
