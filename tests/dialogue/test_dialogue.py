"""Tests for dialogue acts, state, learned policy and manager."""

import pytest

from repro.dialogue import DialogueManager, DialogueState, NextActionModel, Phase, acts
from repro.errors import DialogueError, NotFittedError
from repro.synthesis import (
    DialogueFlow,
    FlowDataset,
    FlowTurn,
    SelfPlayConfig,
    SelfPlaySimulator,
)


class TestActs:
    def test_structured_names(self):
        assert acts.request_action("book") == "request_book"
        assert acts.identify_action("customer") == "identify_customer"
        assert acts.ask_slot_action("n") == "ask_slot_n"

    def test_vocabularies_from_tasks(self, movie_tasks):
        __, __, __, tasks = movie_tasks
        user_acts = acts.user_acts_for_tasks(tasks)
        agent_acts = acts.agent_acts_for_tasks(tasks)
        assert "request_ticket_reservation" in user_acts
        assert "identify_screening" in agent_acts
        assert "ask_slot_ticket_amount" in agent_acts
        assert len(agent_acts) == len(set(agent_acts))


class TestState:
    def test_initial(self):
        state = DialogueState()
        assert state.phase is Phase.IDLE
        assert state.missing_slots() == []
        assert not state.all_slots_collected

    def test_start_and_clear_task(self, movie_tasks):
        __, __, __, tasks = movie_tasks
        task = tasks[0]
        state = DialogueState()
        state.start_task(task)
        assert state.phase is Phase.GATHERING
        assert state.missing_slots() == [s.name for s in task.slots]
        state.clear_task()
        assert state.phase is Phase.IDLE

    def test_restart_clears_collected(self, movie_tasks):
        __, __, __, tasks = movie_tasks
        state = DialogueState()
        state.start_task(tasks[0])
        state.collected["ticket_amount"] = 3
        state.restart_task()
        assert state.collected == {}
        assert state.task is tasks[0]

    def test_restart_without_task_rejected(self):
        with pytest.raises(DialogueError):
            DialogueState().restart_task()

    def test_history_window(self):
        state = DialogueState()
        for i in range(10):
            state.record("user", f"a{i}")
        assert len(state.recent_history(4)) == 4
        assert state.recent_history(4)[-1] == "user:a9"


@pytest.fixture()
def flows(movie_tasks):
    __, __, __, tasks = movie_tasks
    return tasks, SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=200)).run()


class TestNextActionModel:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            NextActionModel().predict(())

    def test_bad_context_rejected(self):
        with pytest.raises(DialogueError):
            NextActionModel(max_context=0)

    def test_empty_flows_rejected(self):
        with pytest.raises(DialogueError):
            NextActionModel().fit(FlowDataset())

    def test_high_training_accuracy(self, flows):
        __, dataset = flows
        model = NextActionModel().fit(dataset)
        assert model.evaluate(dataset) > 0.8

    def test_generalises_to_heldout_flows(self, movie_tasks):
        __, __, __, tasks = movie_tasks
        train = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=200, seed=1)).run()
        test = SelfPlaySimulator(tasks, SelfPlayConfig(n_flows=50, seed=2)).run()
        model = NextActionModel().fit(train)
        assert model.evaluate(test) > 0.7

    def test_predict_after_request(self, flows):
        tasks, dataset = flows
        model = NextActionModel().fit(dataset)
        prediction = model.predict(("user:request_ticket_reservation",))
        assert prediction.startswith("identify_") or prediction.startswith(
            "ask_slot_"
        )

    def test_ranked_probabilities_normalised(self, flows):
        __, dataset = flows
        model = NextActionModel().fit(dataset)
        ranked = model.predict_ranked(("user:greet",))
        assert sum(p for __, p in ranked) == pytest.approx(1.0)

    def test_backoff_on_unseen_history(self, flows):
        __, dataset = flows
        model = NextActionModel().fit(dataset)
        # Completely unseen context falls back without crashing.
        assert model.predict(("user:zzz", "agent:qqq")) in model.actions()


class TestManager:
    def make(self, flows):
        tasks, dataset = flows
        model = NextActionModel().fit(dataset)
        return tasks, DialogueManager(model, tasks)

    def test_task_lookup(self, flows):
        tasks, manager = self.make(flows)
        assert manager.task("ticket_reservation").name == "ticket_reservation"
        with pytest.raises(DialogueError):
            manager.task("ghost")
        assert "cancel_reservation" in manager.task_names()

    def test_idle_legal_actions(self, flows):
        __, manager = self.make(flows)
        state = DialogueState()
        legal = manager.legal_actions(state)
        assert acts.AGENT_GREET in legal

    def test_gathering_proposes_first_requirement(self, flows):
        tasks, manager = self.make(flows)
        task = manager.task("ticket_reservation")
        state = DialogueState()
        state.start_task(task)
        action = manager.propose(state)
        assert action == "identify_customer"

    def test_gathering_advances_with_collected(self, flows):
        tasks, manager = self.make(flows)
        task = manager.task("ticket_reservation")
        state = DialogueState()
        state.start_task(task)
        state.collected["customer_id"] = 1
        assert manager.propose(state) == "identify_screening"
        state.collected["screening_id"] = 1
        assert manager.propose(state) == "ask_slot_ticket_amount"
        state.collected["ticket_amount"] = 2
        assert manager.propose(state) == acts.AGENT_CONFIRM

    def test_confirming_offers_execute(self, flows):
        tasks, manager = self.make(flows)
        state = DialogueState()
        state.start_task(manager.task("ticket_reservation"))
        state.phase = Phase.CONFIRMING
        legal = manager.legal_actions(state)
        assert acts.AGENT_EXECUTE in legal
        assert acts.AGENT_RESTART in legal

    def test_choosing_has_no_agent_actions(self, flows):
        __, manager = self.make(flows)
        state = DialogueState()
        state.start_task(manager.task("ticket_reservation"))
        state.phase = Phase.CHOOSING
        assert manager.legal_actions(state) == []
        assert manager.propose(state) is None
