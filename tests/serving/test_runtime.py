"""Integration tests for the concurrent multi-session AgentRuntime.

Session isolation is the acceptance bar: interleaved cinema dialogues in
different sessions must never see each other's slots, choices or
awareness updates, and ≥16 sessions must be servable concurrently.
"""

import threading
from collections import Counter

import pytest

from repro.dialogue import Phase
from repro.errors import UnknownSessionError
from repro.serving import AgentRuntime


@pytest.fixture()
def runtime(trained_agent):
    __, agent = trained_agent
    return AgentRuntime.for_agent(agent)


def unique_screenings(database, limit):
    """Up to ``limit`` (title, date, time) triples naming one screening."""
    counts = Counter()
    for row in database.rows("screening"):
        movie = database.find_one("movie", "movie_id", row["movie_id"])
        counts[(movie["title"], row["date"], row["start_time"])] += 1
    return [key for key, count in counts.items() if count == 1][:limit]


def drive_to_completion(runtime, sid, max_turns=8):
    """Answer choice lists / confirmations until the task finishes."""
    for __ in range(max_turns):
        state = runtime.session(sid).context.state
        if state.task is None:
            return
        if state.phase is Phase.CHOOSING:
            runtime.respond(sid, "the first one")
        elif state.phase is Phase.CONFIRMING:
            runtime.respond(sid, "yes please")
        else:
            return


class TestSessionIsolation:
    def test_interleaved_slots_do_not_leak(self, runtime):
        a = runtime.create_session()
        b = runtime.create_session()

        runtime.respond(a, "i want to buy 2 tickets")
        runtime.respond(b, "i want to buy 5 tickets")
        runtime.respond(a, "my name is alice")
        runtime.respond(b, "my name is bob")

        state_a = runtime.session(a).context.state
        state_b = runtime.session(b).context.state
        assert state_a.collected["ticket_amount"] == 2
        assert state_b.collected["ticket_amount"] == 5
        assert state_a is not state_b
        assert state_a.identification is not state_b.identification

    def test_abort_in_one_session_keeps_the_other(self, runtime):
        a = runtime.create_session()
        b = runtime.create_session()
        runtime.respond(a, "i want to buy 2 tickets")
        runtime.respond(b, "i want to buy 3 tickets")
        runtime.respond(a, "never mind, forget it")
        assert runtime.session(a).context.state.task is None
        state_b = runtime.session(b).context.state
        assert state_b.task is not None
        assert state_b.collected["ticket_amount"] == 3

    def test_choice_phase_does_not_leak(self, runtime, trained_agent):
        """One session in CHOOSING must not trap the other session."""
        __, agent = trained_agent
        title = agent._database.rows("movie")[0]["title"]
        a = runtime.create_session()
        b = runtime.create_session()
        runtime.respond(a, "i want to buy 2 tickets")
        runtime.respond(a, f"i want to watch {title}")
        phase_a = runtime.session(a).context.state.phase
        reply = runtime.respond(b, "hello")
        assert "Hello" in reply.text
        assert runtime.session(b).context.state.phase is not Phase.CHOOSING
        assert runtime.session(a).context.state.phase is phase_a

    def test_awareness_updates_stay_per_session(self, runtime):
        a = runtime.create_session()
        b = runtime.create_session()
        runtime.respond(a, "i want to buy 2 tickets")
        runtime.respond(b, "i want to buy 2 tickets")
        runtime.respond(a, "i do not know")

        awareness_a = runtime.session(a).context.awareness
        awareness_b = runtime.session(b).context.awareness
        assert awareness_a is not awareness_b
        assert len(awareness_a.observed_attributes()) >= 1
        assert awareness_b.observed_attributes() == []

    def test_full_interleaved_bookings(self, runtime, trained_agent):
        __, agent = trained_agent
        database = agent._database
        screenings = unique_screenings(database, 2)
        if len(screenings) < 2:
            pytest.skip("fixture database lacks two unique screenings")
        customers = database.rows("customer")[:2]
        sessions = [runtime.create_session() for __ in range(2)]

        # Interleave the two bookings turn by turn.
        amounts = [2, 3]
        for turn in range(4):
            for i, sid in enumerate(sessions):
                title, date, time = screenings[i]
                script = [
                    f"i want to buy {amounts[i]} tickets",
                    f"my email is {customers[i]['email']}",
                    f"the movie title is {title}",
                    f"on {date.isoformat()} at {time.strftime('%H:%M')}",
                ]
                runtime.respond(sid, script[turn])
        for sid in sessions:
            drive_to_completion(runtime, sid)

        for i, sid in enumerate(sessions):
            executed = [
                turn.executed
                for turn in runtime.transcript(sid)
                if turn.executed is not None
            ]
            assert executed, f"session {i} booked nothing"
            assert executed[0].procedure == "ticket_reservation"
            assert executed[0].arguments["ticket_amount"] == amounts[i]
            assert (
                executed[0].arguments["customer_id"]
                == customers[i]["customer_id"]
            )


class TestConcurrentServing:
    N_SESSIONS = 16

    def test_concurrent_sessions_serve_and_isolate(self, runtime):
        """16 threads, one session each, fully concurrent turns."""
        sids = [runtime.create_session() for __ in range(self.N_SESSIONS)]
        errors = []
        barrier = threading.Barrier(self.N_SESSIONS)

        def converse(index, sid):
            try:
                barrier.wait(timeout=30)
                amount = (index % 7) + 1
                runtime.respond(sid, "hello")
                runtime.respond(sid, f"i want to buy {amount} tickets")
                state = runtime.session(sid).context.state
                assert state.collected["ticket_amount"] == amount, (
                    f"session {sid} saw {state.collected}"
                )
                runtime.respond(sid, "never mind, forget it")
                assert runtime.session(sid).context.state.task is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((sid, exc))

        threads = [
            threading.Thread(target=converse, args=(i, sid))
            for i, sid in enumerate(sids)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert runtime.session_count == self.N_SESSIONS
        stats = runtime.stats()
        assert stats.turns_served >= 3 * self.N_SESSIONS
        for sid in sids:
            assert all(
                turn.agent.strip() for turn in runtime.transcript(sid)
            ), f"silent reply in session {sid}"

    def test_concurrent_bookings_serialize_transactions(
        self, runtime, trained_agent
    ):
        """Parallel sessions executing real transactions stay correct."""
        __, agent = trained_agent
        database = agent._database
        screenings = unique_screenings(database, 4)
        customers = database.rows("customer")[:len(screenings)]
        if len(screenings) < 2:
            pytest.skip("fixture database lacks unique screenings")
        before = database.count("reservation")
        errors = []

        def book(i):
            try:
                title, date, time = screenings[i]
                sid = runtime.create_session()
                runtime.respond(sid, "i want to buy 1 ticket")
                runtime.respond(sid, f"my email is {customers[i]['email']}")
                runtime.respond(sid, f"the movie title is {title}")
                runtime.respond(
                    sid,
                    f"on {date.isoformat()} at {time.strftime('%H:%M')}",
                )
                drive_to_completion(runtime, sid)
                return
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((i, exc))

        threads = [
            threading.Thread(target=book, args=(i,))
            for i in range(len(screenings))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        booked = database.count("reservation") - before
        assert booked == len(screenings)


class TestStaleCandidates:
    def test_concurrent_delete_does_not_crash_other_session(
        self, runtime, trained_agent
    ):
        """A row deleted by one session between another session's turns
        must not crash the surviving session's next turn."""
        __, agent = trained_agent
        database = agent._database
        # Find a customer with at least two reservations so that session
        # A is mid-identification (not yet unique) when B deletes one.
        from collections import Counter

        per_customer = Counter(
            row["customer_id"] for row in database.rows("reservation")
        )
        customer_id, count = per_customer.most_common(1)[0]
        if count < 2:
            pytest.skip("fixture lacks a customer with two reservations")
        customer = database.find_one("customer", "customer_id", customer_id)

        a = runtime.create_session()
        runtime.respond(a, "i want to cancel my reservation")
        runtime.respond(a, f"my email is {customer['email']}")
        session_a = runtime.peek_session(a)
        identification = session_a.context.state.identification
        if identification is None or identification.candidates.table != (
            "reservation"
        ):
            pytest.skip("dialogue did not reach reservation identification")
        stale_rid = identification.candidates.row_ids[0]

        # "Session B": a committed cancel of one of A's candidates.
        reservation_id = database.table("reservation").get(stale_rid)[
            "reservation_id"
        ]
        database.procedures.call(
            "cancel_reservation", reservation_id=reservation_id
        )
        assert not database.table("reservation").has_row(stale_rid)

        # A's next turn must survive and move on without the stale row.
        reply = runtime.respond(a, "the first one")
        assert reply.text.strip()
        state = runtime.peek_session(a).context.state
        if state.identification is not None:
            assert stale_rid not in state.identification.candidates.row_ids


class TestRuntimeSessionManagement:
    def test_respond_on_unknown_session_raises(self, runtime):
        with pytest.raises(UnknownSessionError):
            runtime.respond("ghost", "hello")

    def test_end_session_frees_it(self, runtime):
        sid = runtime.create_session()
        runtime.respond(sid, "hello")
        runtime.end_session(sid)
        with pytest.raises(UnknownSessionError):
            runtime.respond(sid, "hello again")

    def test_stats_counts_turns(self, runtime):
        sid = runtime.create_session()
        runtime.respond(sid, "hello")
        runtime.respond(sid, "goodbye")
        stats = runtime.stats()
        assert stats.turns_served >= 2
        assert stats.live_sessions >= 1
        assert stats.sessions_created >= 1

    def test_transcripts_recorded_per_session(self, runtime):
        a = runtime.create_session()
        b = runtime.create_session()
        runtime.respond(a, "hello")
        runtime.respond(b, "goodbye")
        assert [t.user for t in runtime.transcript(a)] == ["hello"]
        assert [t.user for t in runtime.transcript(b)] == ["goodbye"]

    def _book(self, runtime, trained_agent, sid, triple):
        """Drive one complete ticket booking in ``sid``."""
        __, agent = trained_agent
        customer = agent._database.rows("customer")[0]
        title, date, start_time = triple
        runtime.respond(sid, "i want to buy 2 tickets")
        runtime.respond(sid, f"my email is {customer['email']}")
        runtime.respond(sid, f"the movie title is {title}")
        runtime.respond(
            sid, f"on {date.isoformat()} at {start_time.strftime('%H:%M')}"
        )
        drive_to_completion(runtime, sid)
        executed = [
            turn.executed
            for turn in runtime.transcript(sid)
            if turn.executed is not None
        ]
        assert executed and executed[0].procedure == "ticket_reservation"

    def test_stats_expose_plan_cache_counters(
        self, runtime, trained_agent
    ):
        # Executing the reservation runs the booked-seats aggregate
        # through the prepared-plan cache, whatever other caches absorb.
        __, agent = trained_agent
        triples = unique_screenings(agent._database, 1)
        sid = runtime.create_session()
        self._book(runtime, trained_agent, sid, triples[0])
        stats = runtime.stats()
        assert stats.plan_cache_hits + stats.plan_cache_misses > 0
        # The LRU-bounded template store exposes its eviction counter;
        # a per-turn workload of a few shapes never reaches the cap.
        assert stats.plan_cache_evictions == 0

    def test_session_stats_attribute_cache_traffic_and_latency(
        self, runtime, trained_agent
    ):
        __, agent = trained_agent
        triples = unique_screenings(agent._database, 1)
        a = runtime.create_session()
        b = runtime.create_session()
        self._book(runtime, trained_agent, a, triples[0])
        stats_a = runtime.session_stats(a)
        stats_b = runtime.session_stats(b)
        assert stats_a.turns >= 4
        assert stats_a.plan_cache_hits + stats_a.plan_cache_misses > 0
        assert stats_a.mean_turn_ms > 0.0
        assert stats_a.last_turn_ms > 0.0
        # The idle session accrued no traffic and no latency.
        assert stats_b.turns == 0
        assert stats_b.plan_cache_hits == stats_b.plan_cache_misses == 0
        assert stats_b.mean_turn_ms == 0.0

    def test_compat_single_session_api_still_works(self, trained_agent):
        """The classic CAT.synthesize() -> agent.respond() path."""
        __, agent = trained_agent
        agent.reset()
        reply = agent.respond("hello")
        assert "Hello" in reply.text
        agent.respond("i want to buy 2 tickets")
        assert agent.state.collected["ticket_amount"] == 2
        agent.reset()
        assert agent.state.task is None


class TestSessionConnections:
    """Sessions hold Connections: the unified execution API threaded
    through the serving runtime."""

    def test_sessions_hold_distinct_connections(self, runtime):
        a = runtime.create_session()
        b = runtime.create_session()
        conn_a = runtime.session_connection(a)
        conn_b = runtime.session_connection(b)
        assert conn_a is not conn_b
        assert conn_a.name == a
        assert conn_a.database is runtime.database

    def test_turn_traffic_lands_on_session_connection(self, runtime):
        sid = runtime.create_session()
        runtime.respond(sid, "i want to buy 2 tickets")
        runtime.respond(sid, "my name is alice")
        stats = runtime.session_connection(sid).stats()
        assert stats.plan_cache_hits + stats.plan_cache_misses > 0

    def test_client_statements_counted_per_session(self, runtime):
        from repro.db import select

        sid = runtime.create_session()
        conn = runtime.session_connection(sid)
        conn.execute(select("movie").count()).scalar()
        stats = runtime.session_stats(sid)
        assert stats.executions == 1
        assert stats.statements_prepared == 1

    def test_store_created_sessions_get_connection_lazily(self, runtime):
        session = runtime.sessions.create("direct")
        assert session.connection is None
        runtime.respond("direct", "hello")
        assert runtime.session_connection("direct") is not None

    def test_runtime_advisor_reads_database_advisor(self, runtime):
        from repro.db import select
        from repro.db.query import eq

        sid = runtime.create_session()
        conn = runtime.session_connection(sid)
        conn.execute(select("movie").where(eq("title", "Nothing"))).all()
        suggestions = runtime.advisor()
        assert any(
            s.table == "movie" and s.column == "title" for s in suggestions
        )
