"""Unit tests for the session store: TTL expiry and LRU eviction."""

import threading

import pytest

from repro.errors import ServingError, SessionExpiredError, UnknownSessionError
from repro.serving import SessionStore


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubContext:
    def __init__(self) -> None:
        self.turns = []


@pytest.fixture()
def clock():
    return FakeClock()


def make_store(clock, **kwargs):
    return SessionStore(StubContext, clock=clock, **kwargs)


class TestLifecycle:
    def test_create_generates_unique_ids(self, clock):
        store = make_store(clock)
        first = store.create()
        second = store.create()
        assert first.session_id != second.session_id
        assert len(store) == 2

    def test_create_with_explicit_id(self, clock):
        store = make_store(clock)
        session = store.create("alice")
        assert session.session_id == "alice"
        assert store.get("alice") is session

    def test_duplicate_id_rejected(self, clock):
        store = make_store(clock)
        store.create("alice")
        with pytest.raises(ServingError):
            store.create("alice")

    def test_each_session_gets_fresh_context(self, clock):
        store = make_store(clock)
        a = store.create()
        b = store.create()
        assert a.context is not b.context

    def test_get_unknown_raises(self, clock):
        store = make_store(clock)
        with pytest.raises(UnknownSessionError):
            store.get("nope")

    def test_close_removes(self, clock):
        store = make_store(clock)
        store.create("alice")
        store.close("alice")
        assert "alice" not in store
        with pytest.raises(UnknownSessionError):
            store.close("alice")


class TestTTL:
    def test_idle_session_expires_on_get(self, clock):
        store = make_store(clock, ttl=60.0)
        store.create("alice")
        clock.advance(61.0)
        with pytest.raises(SessionExpiredError):
            store.get("alice")
        assert "alice" not in store
        assert store.expired_count == 1

    def test_activity_refreshes_ttl(self, clock):
        store = make_store(clock, ttl=60.0)
        store.create("alice")
        for __ in range(5):
            clock.advance(50.0)
            store.get("alice")  # keeps the session alive
        assert "alice" in store

    def test_expire_reaps_eagerly(self, clock):
        store = make_store(clock, ttl=60.0)
        store.create("old")
        clock.advance(59.0)
        store.create("young")
        clock.advance(2.0)  # old: 61s idle, young: 2s idle
        assert store.expire() == ["old"]
        assert store.ids() == ["young"]

    def test_expired_session_is_gone_not_stale(self, clock):
        """A re-created id after expiry must get a fresh context."""
        store = make_store(clock, ttl=60.0)
        old = store.create("alice")
        old.context.turns.append("x")
        clock.advance(61.0)
        with pytest.raises(UnknownSessionError):
            store.get("alice")
        fresh = store.create("alice")
        assert fresh.context.turns == []

    def test_invalid_ttl_rejected(self, clock):
        with pytest.raises(ServingError):
            make_store(clock, ttl=0.0)


class TestPeek:
    def test_peek_does_not_refresh_ttl(self, clock):
        store = make_store(clock, ttl=60.0)
        store.create("alice")
        clock.advance(40.0)
        store.peek("alice")  # observing must not keep it alive
        clock.advance(40.0)  # 80s idle total despite the peek
        with pytest.raises(SessionExpiredError):
            store.peek("alice")

    def test_peek_does_not_change_lru_order(self, clock):
        store = make_store(clock, max_sessions=2)
        store.create("a")
        clock.advance(1.0)
        store.create("b")
        store.peek("a")  # must NOT rescue a from eviction
        store.create("c")
        assert sorted(store.ids()) == ["b", "c"]

    def test_peek_unknown_raises(self, clock):
        store = make_store(clock)
        with pytest.raises(UnknownSessionError):
            store.peek("nope")


class TestLRU:
    def test_capacity_evicts_least_recently_used(self, clock):
        store = make_store(clock, max_sessions=3)
        for sid in ("a", "b", "c"):
            store.create(sid)
            clock.advance(1.0)
        store.get("a")  # refresh a: b is now the LRU
        store.create("d")
        assert "b" not in store
        assert sorted(store.ids()) == ["a", "c", "d"]
        assert store.evicted_count == 1

    def test_eviction_order_is_use_order_not_creation_order(self, clock):
        store = make_store(clock, max_sessions=2)
        store.create("a")
        store.create("b")
        store.get("a")
        store.create("c")  # b was least recently *used*
        assert sorted(store.ids()) == ["a", "c"]

    def test_invalid_capacity_rejected(self, clock):
        with pytest.raises(ServingError):
            make_store(clock, max_sessions=0)


class TestBusySessionsNotReclaimed:
    """Reclamation must never race a turn in flight (held turn_lock)."""

    def test_lru_eviction_skips_mid_turn_session(self, clock):
        store = make_store(clock, max_sessions=2)
        busy = store.create("busy")
        clock.advance(1.0)
        store.create("idle")
        with busy.turn_lock:
            # "busy" is the LRU victim but mid-turn: evict "idle".
            store.create("new")
        assert sorted(store.ids()) == ["busy", "new"]
        assert store.evicted_count == 1

    def test_admits_over_capacity_when_every_session_is_busy(self, clock):
        store = make_store(clock, max_sessions=2)
        a = store.create("a")
        b = store.create("b")
        with a.turn_lock, b.turn_lock:
            store.create("c")
            assert len(store) == 3
        assert store.evicted_count == 0

    def test_ttl_lookup_reages_mid_turn_session(self, clock):
        store = make_store(clock, ttl=60.0)
        session = store.create("alice")
        clock.advance(61.0)
        with session.turn_lock:
            # peek never touches, so only the re-age path keeps it.
            assert store.peek("alice") is session
        clock.advance(59.0)
        assert store.peek("alice") is session
        assert store.expired_count == 0

    def test_reap_skips_and_reages_mid_turn_session(self, clock):
        store = make_store(clock, ttl=60.0)
        busy = store.create("busy")
        store.create("idle")
        clock.advance(61.0)
        with busy.turn_lock:
            assert store.expire() == ["idle"]
        assert "busy" in store
        clock.advance(59.0)  # re-aged at the reap: still inside TTL
        assert store.expire() == []
        clock.advance(2.0)  # turn long done, now genuinely idle
        assert store.expire() == ["busy"]


class TestConcurrency:
    def test_parallel_creates_stay_within_capacity(self, clock):
        store = make_store(clock, max_sessions=8)
        errors = []

        def worker():
            try:
                for __ in range(25):
                    store.create()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == 8
        assert store.created_count == 200
        assert store.evicted_count == 192
