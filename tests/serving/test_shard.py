"""Tests for the session-affinity shard router.

The fake runtime stands in for AgentRuntime so routing, affinity and
the wire protocol are exercised without synthesizing an agent.  The
in-process mode covers the routing logic; one fork-based test proves
the real pipe protocol end to end (skipped where fork is unavailable).
"""

import itertools
import multiprocessing
import zlib

import pytest

from repro.errors import ServingError, UnknownSessionError
from repro.serving import ShardReply, ShardRouter


class _FakeNLU:
    def __init__(self, intent):
        self.intent = intent


class _FakeReply:
    def __init__(self, text, executed, intent):
        self.text = text
        self.executed = executed
        self.nlu = _FakeNLU(intent) if intent else None


class _FakeStats:
    def __init__(self, live_sessions, turns_served):
        self.live_sessions = live_sessions
        self.turns_served = turns_served
        self.transactions_committed = 2
        self.transactions_aborted = 1
        self.snapshot_version = 7
        self.commit_waits = 0


class _FakeTableStorage:
    def __init__(self, tag):
        self.sealed_rows = 100 + tag
        self.delta_rows = tag
        self.retired_rows = 0
        self.sealed_epoch = 1
        self.compactions = 1
        self.last_compaction_seconds = 0.001


class FakeRuntime:
    """AgentRuntime-shaped stand-in tagging replies with its worker."""

    def __init__(self, tag):
        self.tag = tag
        self.sessions = {}
        self.turns = 0
        self.compactions = 0

    def create_session(self, session_id):
        if session_id in self.sessions:
            raise ServingError(f"session {session_id!r} already exists")
        self.sessions[session_id] = []
        return session_id

    def respond(self, session_id, text):
        if session_id not in self.sessions:
            raise UnknownSessionError(f"no session {session_id!r}")
        self.sessions[session_id].append(text)
        self.turns += 1
        return _FakeReply(f"w{self.tag}:{text}", executed=True, intent="buy")

    def end_session(self, session_id):
        if self.sessions.pop(session_id, None) is None:
            raise UnknownSessionError(f"no session {session_id!r}")

    def session_ids(self):
        return list(self.sessions)

    def stats(self):
        return _FakeStats(len(self.sessions), self.turns)

    def storage_stats(self):
        return {"item": _FakeTableStorage(self.tag)}

    def compact(self):
        self.compactions += 1
        return 1


_tag_counter = itertools.count()


def make_fake_runtime():
    """Bootstrap used by both in-process and forked workers."""
    return FakeRuntime(tag=next(_tag_counter))


@pytest.fixture()
def router():
    global _tag_counter
    _tag_counter = itertools.count()  # worker tags == worker indexes
    with ShardRouter(4, make_fake_runtime, inprocess=True) as shard:
        yield shard


class TestRouting:
    def test_shard_of_is_stable_crc32(self, router):
        for sid in ("alice", "bob", "s000001", "x" * 50):
            expected = zlib.crc32(sid.encode("utf-8")) % 4
            assert router.shard_of(sid) == expected
            assert router.shard_of(sid) == router.shard_of(sid)

    def test_turns_land_on_the_owning_worker(self, router):
        for sid in ("alice", "bob", "carol", "dave"):
            router.create_session(sid)
            reply = router.respond(sid, "hello")
            assert isinstance(reply, ShardReply)
            assert reply.text == f"w{router.shard_of(sid)}:hello"
            assert reply.executed is True
            assert reply.intent == "buy"

    def test_affinity_is_total_across_turns(self, router):
        sid = router.create_session("sticky")
        owner = router.shard_of(sid)
        for turn in range(6):
            router.respond(sid, f"turn {turn}")
        stats = router.stats()
        assert stats.per_worker_turns[owner] == 6
        assert stats.turns_served == 6

    def test_generated_ids_are_unique_and_live(self, router):
        ids = [router.create_session() for __ in range(8)]
        assert len(set(ids)) == 8
        assert sorted(router.session_ids()) == sorted(ids)

    def test_end_session_removes_from_owner(self, router):
        sid = router.create_session("gone")
        router.end_session(sid)
        assert sid not in router.session_ids()
        with pytest.raises(UnknownSessionError):
            router.respond(sid, "hello?")

    def test_stats_aggregate_across_workers(self, router):
        for sid in ("alice", "bob", "carol"):
            router.create_session(sid)
            router.respond(sid, "hi")
        stats = router.stats()
        assert stats.turns_served == 3
        assert stats.live_sessions == 3
        assert sum(stats.per_worker_turns) == 3
        assert [w.worker for w in stats.workers] == [0, 1, 2, 3]
        assert all(w.snapshot_version == 7 for w in stats.workers)

    def test_unknown_session_error_crosses_the_router(self, router):
        with pytest.raises(UnknownSessionError):
            router.respond("never-created", "hello")

    def test_storage_stats_per_worker_as_plain_dicts(self, router):
        stats = router.storage_stats()
        assert sorted(stats) == [0, 1, 2, 3]
        for index, tables in stats.items():
            figures = tables["item"]
            assert figures["sealed_rows"] == 100 + index
            assert figures["delta_rows"] == index
            assert figures["compactions"] == 1
            assert "last_compaction_seconds" in figures

    def test_compact_fans_out_to_every_worker(self, router):
        assert router.compact() == {0: 1, 1: 1, 2: 1, 3: 1}


class TestConstruction:
    def test_zero_workers_rejected(self):
        with pytest.raises(ServingError):
            ShardRouter(0, make_fake_runtime, inprocess=True)

    def test_bad_bootstrap_spec_rejected(self):
        with pytest.raises(ServingError):
            ShardRouter(1, "not-a-module-attr-spec", inprocess=True)

    def test_dotted_path_bootstrap_resolves(self):
        with ShardRouter(
            1,
            "tests.serving.test_shard:make_fake_runtime",
            inprocess=True,
        ) as shard:
            sid = shard.create_session()
            assert shard.respond(sid, "ping").executed is True


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestProcessWorkers:
    def test_fork_workers_serve_over_the_pipe(self):
        with ShardRouter(2, make_fake_runtime, start_method="fork") as shard:
            sids = [shard.create_session() for __ in range(4)]
            for sid in sids:
                reply = shard.respond(sid, "hello")
                assert reply.text.endswith(":hello")
            stats = shard.stats()
            assert stats.turns_served == 4
            assert stats.live_sessions == 4
            assert sorted(shard.session_ids()) == sorted(sids)

    def test_errors_cross_the_pipe_typed(self):
        with ShardRouter(2, make_fake_runtime, start_method="fork") as shard:
            with pytest.raises(UnknownSessionError):
                shard.respond("ghost", "boo")
