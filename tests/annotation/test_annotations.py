"""Tests for schema annotations."""

import pytest

from repro.annotation import AttributeAnnotation, SchemaAnnotations
from repro.errors import AnnotationError


class TestDefaults:
    def test_primary_key_defaults_never_ask(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        assert not annotations.may_ask("movie", "movie_id")
        assert annotations.awareness_prior("movie", "movie_id") < 0.1

    def test_foreign_key_defaults_never_ask(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        assert not annotations.may_ask("screening", "movie_id")

    def test_plain_column_defaults_askable(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        assert annotations.may_ask("movie", "title")
        assert annotations.awareness_prior("movie", "title") == pytest.approx(0.5)


class TestAnnotate:
    def test_set_and_get(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        annotations.annotate("movie", "title", awareness_prior=0.9,
                             display_name="movie title")
        annotation = annotations.get("movie", "title")
        assert annotation.awareness_prior == 0.9
        assert annotations.display_name("movie", "title") == "movie title"

    def test_partial_update_preserves_other_fields(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        annotations.annotate("movie", "title", awareness_prior=0.9)
        annotations.annotate("movie", "title", display_name="the title")
        annotation = annotations.get("movie", "title")
        assert annotation.awareness_prior == 0.9
        assert annotation.display_name == "the title"

    def test_display_name_fallback_is_humanised(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        assert annotations.display_name("screening", "start_time") == "start time"

    def test_unknown_attribute_rejected(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        with pytest.raises(AnnotationError):
            annotations.annotate("movie", "ghost", awareness_prior=0.5)
        with pytest.raises(AnnotationError):
            annotations.get("ghost", "title")

    def test_prior_out_of_range_rejected(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        with pytest.raises(AnnotationError):
            annotations.annotate("movie", "title", awareness_prior=1.5)

    def test_bad_annotation_object(self):
        with pytest.raises(AnnotationError):
            AttributeAnnotation(awareness_prior=-0.1)

    def test_explicit_refs_lists_only_set(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        annotations.annotate("movie", "title", awareness_prior=0.9)
        refs = list(annotations.explicit_refs())
        assert [str(r) for r in refs] == ["movie.title"]


class TestSerialization:
    def test_roundtrip(self, movie_db):
        database, annotations = movie_db
        payload = annotations.to_dict()
        restored = SchemaAnnotations.from_dict(database, payload)
        assert restored.to_dict() == payload

    def test_malformed_key_rejected(self, movie_db):
        database, __ = movie_db
        with pytest.raises(AnnotationError):
            SchemaAnnotations.from_dict(database, {"nodot": {}})
