"""Tests for task extraction from procedures."""

import pytest

from repro.annotation import SchemaAnnotations, TaskExtractor
from repro.db import Catalog, ColumnRef
from repro.errors import ExtractionError


@pytest.fixture()
def extractor(movie_db):
    database, annotations = movie_db
    return database, TaskExtractor(Catalog(database), annotations)


class TestTaskShape:
    def test_one_task_per_procedure(self, extractor):
        database, ext = extractor
        tasks = ext.extract_all()
        assert {t.name for t in tasks} == set(database.procedures.names())

    def test_slots_match_parameters(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        assert [s.name for s in task.slots] == [
            "customer_id", "screening_id", "ticket_amount",
        ]

    def test_entity_and_value_slots_partition(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        assert {s.name for s in task.entity_slots} == {
            "customer_id", "screening_id",
        }
        assert {s.name for s in task.value_slots} == {"ticket_amount"}

    def test_slot_lookup_helpers(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        assert task.slot("ticket_amount").dtype.value == "integer"
        with pytest.raises(ExtractionError):
            task.slot("nope")
        assert task.lookup_for("customer_id") is not None
        assert task.lookup_for("ticket_amount") is None

    def test_action_names(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        assert task.request_action == "request_ticket_reservation"
        assert set(task.identify_actions) == {
            "identify_customer", "identify_screening",
        }


class TestLookups:
    def test_own_columns_at_hop_zero(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        lookup = task.lookup_for("screening_id")
        hop0 = set(lookup.identifying_attributes[0])
        assert ColumnRef("screening", "date") in hop0

    def test_never_ask_columns_excluded(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        lookup = task.lookup_for("screening_id")
        all_attributes = set(lookup.all_attributes())
        assert ColumnRef("screening", "screening_id") not in all_attributes
        assert ColumnRef("screening", "capacity") not in all_attributes

    def test_joined_attributes_at_hop_one(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        lookup = task.lookup_for("screening_id")
        hop1 = set(lookup.identifying_attributes[1])
        assert ColumnRef("movie", "title") in hop1

    def test_customer_lookup_stays_local(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("ticket_reservation"))
        lookup = task.lookup_for("customer_id")
        tables = {a.table for a in lookup.all_attributes()}
        assert tables == {"customer"}

    def test_reservation_lookup_spans_parents(self, extractor):
        database, ext = extractor
        task = ext.extract(database.procedures.get("cancel_reservation"))
        lookup = task.lookup_for("reservation_id")
        tables = {a.table for a in lookup.all_attributes()}
        assert {"reservation", "customer", "screening", "movie"} <= tables

    def test_hop_bound_limits_attributes(self, movie_db):
        database, annotations = movie_db
        shallow = TaskExtractor(Catalog(database), annotations, max_join_hops=0)
        task = shallow.extract(database.procedures.get("ticket_reservation"))
        lookup = task.lookup_for("screening_id")
        assert set(lookup.identifying_attributes) == {0}

    def test_negative_hops_rejected(self, movie_db):
        database, annotations = movie_db
        with pytest.raises(ExtractionError):
            TaskExtractor(Catalog(database), annotations, max_join_hops=-1)

    def test_all_never_ask_raises(self, movie_db):
        database, __ = movie_db
        annotations = SchemaAnnotations(database)
        for column in database.schema.table("customer").column_names:
            annotations.annotate("customer", column, never_ask=True)
        extractor = TaskExtractor(Catalog(database), annotations,
                                  max_join_hops=0)
        with pytest.raises(ExtractionError):
            extractor.extract(database.procedures.get("ticket_reservation"))
