"""Tests for the three slot-selection policies."""

import pytest

from repro.annotation import TaskExtractor
from repro.dataaware import (
    CandidateSet,
    DataAwarePolicy,
    InformativenessMeasure,
    RandomPolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.db import Catalog, ColumnRef, StatisticsCatalog
from repro.errors import PolicyError


@pytest.fixture()
def env(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    task = next(t for t in tasks if t.name == "ticket_reservation")
    lookup = task.lookup_for("screening_id")
    return database, catalog, annotations, lookup


class TestDataAwarePolicy:
    def make(self, env, **kwargs):
        database, catalog, annotations, lookup = env
        return DataAwarePolicy(
            lookup,
            UserAwarenessModel(annotations),
            StatisticsCatalog(database),
            **kwargs,
        )

    def test_returns_askable_attribute(self, env):
        database, catalog, annotations, lookup = env
        policy = self.make(env)
        candidates = CandidateSet.initial(database, catalog, "screening")
        attribute = policy.next_attribute(candidates, set())
        assert attribute in set(lookup.all_attributes())

    def test_none_when_unique(self, env):
        database, catalog, annotations, lookup = env
        policy = self.make(env)
        candidates = CandidateSet.initial(database, catalog, "screening")
        lone = candidates.refine(
            ColumnRef("screening", "screening_id"),
            database.rows("screening")[0]["screening_id"],
        )
        assert policy.next_attribute(lone, set()) is None

    def test_asked_attributes_skipped(self, env):
        database, catalog, annotations, lookup = env
        policy = self.make(env)
        candidates = CandidateSet.initial(database, catalog, "screening")
        first = policy.next_attribute(candidates, set())
        second = policy.next_attribute(candidates, {first})
        assert second != first

    def test_exhausts_eventually(self, env):
        database, catalog, annotations, lookup = env
        policy = self.make(env)
        candidates = CandidateSet.initial(database, catalog, "screening")
        asked = set()
        for __ in range(50):
            attribute = policy.next_attribute(candidates, asked)
            if attribute is None:
                break
            asked.add(attribute)
        else:
            pytest.fail("policy never exhausted")

    def test_observe_updates_awareness(self, env):
        database, catalog, annotations, lookup = env
        awareness = UserAwarenessModel(annotations)
        policy = DataAwarePolicy(lookup, awareness, StatisticsCatalog(database))
        attribute = ColumnRef("screening", "room")
        before = awareness.probability(attribute)
        for __ in range(10):
            policy.observe(attribute, user_knew=False)
        assert awareness.probability(attribute) < before

    def test_max_hops_limits_choices(self, env):
        database, catalog, annotations, lookup = env
        policy = self.make(env, max_hops=0)
        candidates = CandidateSet.initial(database, catalog, "screening")
        asked = set()
        chosen = []
        for __ in range(20):
            attribute = policy.next_attribute(candidates, asked)
            if attribute is None:
                break
            chosen.append(attribute)
            asked.add(attribute)
        assert all(a.table == "screening" for a in chosen)

    def test_awareness_steers_selection(self, env):
        database, catalog, annotations, lookup = env
        awareness = UserAwarenessModel(annotations, prior_strength=5)
        policy = DataAwarePolicy(
            lookup, awareness, StatisticsCatalog(database),
            expansion_threshold=2.0,  # always consider every hop
        )
        candidates = CandidateSet.initial(database, catalog, "screening")
        first = policy.next_attribute(candidates, set())
        # Make that attribute look unknown to users; it should stop winning.
        for __ in range(200):
            awareness.observe(first, user_knew=False)
        second = policy.next_attribute(candidates, set())
        assert second != first

    def test_measure_variants_work(self, env):
        database, catalog, annotations, lookup = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        for measure in InformativenessMeasure:
            policy = self.make(env, measure=measure)
            assert policy.next_attribute(candidates, set()) is not None


class TestStaticPolicy:
    def test_trained_order_is_fixed(self, env):
        database, catalog, annotations, lookup = env
        policy = StaticPolicy.train(lookup, database, catalog, annotations)
        candidates = CandidateSet.initial(database, catalog, "screening")
        first = policy.next_attribute(candidates, set())
        refined = candidates.refine(first, "whatever")
        # Static ignores candidates: same answer regardless of data state.
        assert policy.next_attribute(candidates, set()) == first
        assert policy.order[0] == first

    def test_respects_asked(self, env):
        database, catalog, annotations, lookup = env
        policy = StaticPolicy.train(lookup, database, catalog, annotations)
        candidates = CandidateSet.initial(database, catalog, "screening")
        order = policy.order
        assert policy.next_attribute(candidates, {order[0]}) == order[1]

    def test_none_when_exhausted(self, env):
        database, catalog, annotations, lookup = env
        policy = StaticPolicy.train(lookup, database, catalog, annotations)
        candidates = CandidateSet.initial(database, catalog, "screening")
        assert policy.next_attribute(candidates, set(policy.order)) is None

    def test_empty_order_rejected(self):
        with pytest.raises(PolicyError):
            StaticPolicy([])


class TestRandomPolicy:
    def test_choices_within_lookup(self, env):
        database, catalog, annotations, lookup = env
        policy = RandomPolicy(lookup, seed=1)
        candidates = CandidateSet.initial(database, catalog, "screening")
        allowed = set(lookup.all_attributes())
        for __ in range(10):
            assert policy.next_attribute(candidates, set()) in allowed

    def test_deterministic_under_seed(self, env):
        database, catalog, annotations, lookup = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        a = [RandomPolicy(lookup, seed=7).next_attribute(candidates, set())
             for __ in range(3)]
        b = [RandomPolicy(lookup, seed=7).next_attribute(candidates, set())
             for __ in range(3)]
        # Fresh policies with the same seed produce the same first draw.
        assert a[0] == b[0]

    def test_respects_asked(self, env):
        database, catalog, annotations, lookup = env
        policy = RandomPolicy(lookup, seed=3)
        candidates = CandidateSet.initial(database, catalog, "screening")
        allowed = set(lookup.all_attributes())
        asked = set(list(allowed)[:-1])
        remaining = allowed - asked
        assert policy.next_attribute(candidates, asked) in remaining

    def test_none_when_all_asked(self, env):
        database, catalog, annotations, lookup = env
        policy = RandomPolicy(lookup, seed=3)
        candidates = CandidateSet.initial(database, catalog, "screening")
        assert policy.next_attribute(
            candidates, set(lookup.all_attributes())
        ) is None
