"""Tests for FK join-path planning and value mapping."""

import pytest

from repro.dataaware import JoinPlanner, map_values
from repro.db import Catalog, ColumnRef
from repro.errors import PolicyError


@pytest.fixture()
def env(movie_db):
    database, __ = movie_db
    return database, Catalog(database)


class TestJoinPlanner:
    def test_identity_path(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("screening")
        assert path is not None and path.length == 0
        assert path.target == "screening"

    def test_forward_path(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("movie")
        assert path is not None
        assert [s.to_table for s in path.steps] == ["movie"]
        assert path.steps[0].source_column == "movie_id"

    def test_junction_path(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "movie")
        path = planner.path_to("actor")
        assert path is not None
        assert [s.to_table for s in path.steps] == ["movie_actor", "actor"]

    def test_unreachable_is_none(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "customer")
        assert planner.path_to("movie") is None

    def test_paths_cached(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        assert planner.path_to("movie") is planner.path_to("movie")


class TestMapValues:
    def test_direct_column(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("movie")
        row_ids = database.table("screening").row_ids()[:5]
        values = map_values(database, path, ColumnRef("movie", "title"), row_ids)
        assert set(values) == set(row_ids)
        for rid in row_ids:
            movie_id = database.table("screening").get(rid)["movie_id"]
            expected = database.find_one("movie", "movie_id", movie_id)["title"]
            assert values[rid] == frozenset({expected})

    def test_junction_fanout(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "movie")
        path = planner.path_to("actor")
        row_ids = database.table("movie").row_ids()[:3]
        values = map_values(database, path, ColumnRef("actor", "name"), row_ids)
        for rid in row_ids:
            movie_id = database.table("movie").get(rid)["movie_id"]
            cast_links = database.find("movie_actor", "movie_id", movie_id)
            expected = {
                database.find_one("actor", "actor_id", link["actor_id"])["name"]
                for link in cast_links
            }
            assert values[rid] == frozenset(expected)

    def test_wrong_target_rejected(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("movie")
        with pytest.raises(PolicyError):
            map_values(database, path, ColumnRef("actor", "name"), [1])

    def test_empty_row_ids(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("movie")
        assert map_values(database, path, ColumnRef("movie", "title"), []) == {}

    def test_null_values_dropped(self, env):
        database, catalog = env
        planner = JoinPlanner(catalog, "screening")
        path = planner.path_to("screening")
        rid = database.table("screening").row_ids()[0]
        database.table("screening").update(rid, {"room": None})
        values = map_values(database, path, ColumnRef("screening", "room"), [rid])
        assert values[rid] == frozenset()
