"""Tests for the interactive identification session."""

import pytest

from repro.dataaware import (
    CandidateSet,
    DataAwarePolicy,
    IdentificationSession,
    IdentificationStatus,
    UserAwarenessModel,
)
from repro.db import Catalog, ColumnRef, StatisticsCatalog
from repro.errors import DialogueError


@pytest.fixture()
def env(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    task = next(t for t in tasks if t.name == "ticket_reservation")
    lookup = task.lookup_for("customer_id")
    policy = DataAwarePolicy(
        lookup, UserAwarenessModel(annotations), StatisticsCatalog(database)
    )
    candidates = CandidateSet.initial(database, catalog, "customer")
    session = IdentificationSession(candidates, policy, "customer_id")
    return database, session


class TestSessionFlow:
    def test_initial_state(self, env):
        __, session = env
        assert session.status is IdentificationStatus.IN_PROGRESS
        assert not session.finished
        assert session.turns == 0

    def test_question_increments_turns(self, env):
        __, session = env
        attribute = session.next_question()
        assert attribute is not None
        assert session.turns == 1
        assert session.pending_question == attribute

    def test_repeated_next_question_is_stable(self, env):
        __, session = env
        first = session.next_question()
        again = session.next_question()
        assert first == again
        assert session.turns == 1  # not double counted

    def test_answer_refines(self, env):
        database, session = env
        attribute = session.next_question()
        target = database.rows("customer")[0]
        base = CandidateSet.initial(
            database, Catalog(database), "customer"
        )
        value = next(iter(base.values_for(attribute)[1]))
        before = len(session.candidates)
        session.answer(value)
        assert len(session.candidates) <= before

    def test_answer_without_question_rejected(self, env):
        __, session = env
        with pytest.raises(DialogueError):
            session.answer("x")

    def test_dont_know_moves_on(self, env):
        __, session = env
        first = session.next_question()
        session.dont_know()
        second = session.next_question()
        assert second != first

    def test_contradictory_answer_keeps_candidates(self, env):
        __, session = env
        session.next_question()
        before = len(session.candidates)
        session.answer("value-that-matches-nothing-qqq")
        assert len(session.candidates) == before
        assert not session.finished or before <= 3

    def test_volunteer_narrows_without_turn(self, env):
        database, session = env
        city = database.rows("customer")[0]["city"]
        turns_before = session.turns
        assert session.volunteer(ColumnRef("customer", "city"), city)
        assert session.turns == turns_before
        assert len(session.candidates) < 60

    def test_volunteer_contradiction_returns_false(self, env):
        __, session = env
        assert not session.volunteer(
            ColumnRef("customer", "city"), "Atlantis-Does-Not-Exist"
        )

    def test_volunteer_withdraws_stale_question(self, env):
        database, session = env
        first = session.next_question()
        other = ColumnRef("customer", "email")
        if first == other:
            other = ColumnRef("customer", "city")
        value = database.rows("customer")[0][other.column]
        session.volunteer(other, value)
        assert session.pending_question is None


class TestTermination:
    def test_unique_via_email(self, env):
        database, session = env
        email = database.rows("customer")[0]["email"]
        session.volunteer(ColumnRef("customer", "email"), email)
        assert session.status is IdentificationStatus.UNIQUE
        outcome = session.outcome()
        assert outcome.entity_key == database.rows("customer")[0]["customer_id"]

    def test_choice_list_when_few(self, env):
        database, session = env
        # Narrow to one family: same last name.
        row = database.rows("customer")[0]
        session.volunteer(ColumnRef("customer", "last_name"), row["last_name"])
        session.volunteer(ColumnRef("customer", "city"), row["city"])
        if session.status is IdentificationStatus.CHOICE_LIST:
            rows = session.choice_list()
            assert 1 < len(rows) <= 3
            session.choose(rows[0]["customer_id"])
            assert session.status is IdentificationStatus.UNIQUE

    def test_choose_outside_list_rejected(self, env):
        database, session = env
        row = database.rows("customer")[0]
        session.volunteer(ColumnRef("customer", "last_name"), row["last_name"])
        if session.status is IdentificationStatus.CHOICE_LIST:
            with pytest.raises(DialogueError):
                session.choose(-999)

    def test_choose_without_list_rejected(self, env):
        __, session = env
        with pytest.raises(DialogueError):
            session.choose(1)

    def test_max_questions_exhausts(self, movie_tasks):
        database, annotations, catalog, tasks = movie_tasks
        task = next(t for t in tasks if t.name == "ticket_reservation")
        lookup = task.lookup_for("customer_id")
        policy = DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database),
        )
        candidates = CandidateSet.initial(database, catalog, "customer")
        session = IdentificationSession(
            candidates, policy, "customer_id", max_questions=1
        )
        session.next_question()
        session.dont_know()
        # After exhausting the question budget the session must not be
        # IN_PROGRESS once the policy runs dry or the bound is hit.
        session.next_question()
        assert session.status in (
            IdentificationStatus.EXHAUSTED,
            IdentificationStatus.CHOICE_LIST,
            IdentificationStatus.IN_PROGRESS,  # one pending question allowed
        )

    def test_bad_choice_list_size(self, env):
        database, session = env
        with pytest.raises(DialogueError):
            IdentificationSession(
                session.candidates, session.policy, "customer_id",
                choice_list_size=0,
            )
