"""Tests for candidate-set tracking and refinement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataaware import AttributeValueCache, CandidateSet
from repro.db import Catalog, ColumnRef
from repro.errors import PolicyError


@pytest.fixture()
def env(movie_db):
    database, annotations = movie_db
    return database, Catalog(database)


class TestInitial:
    def test_all_rows_are_candidates(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        assert len(candidates) == database.count("screening")
        assert not candidates.is_unique
        assert not candidates.is_empty

    def test_rows_materialise(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "movie")
        rows = candidates.rows()
        assert len(rows) == len(candidates)
        assert "title" in rows[0]


class TestValuesFor:
    def test_own_column(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        values = candidates.values_for(ColumnRef("screening", "room"))
        assert set(values) == set(candidates.row_ids)
        assert all(len(v) <= 1 for v in values.values())

    def test_joined_column(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        values = candidates.values_for(ColumnRef("movie", "title"))
        assert all(len(v) == 1 for v in values.values())

    def test_junction_join_multivalued(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "movie")
        values = candidates.values_for(ColumnRef("actor", "name"))
        assert any(len(v) > 1 for v in values.values())

    def test_unreachable_table_raises(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "customer")
        with pytest.raises(PolicyError):
            candidates.values_for(ColumnRef("movie", "title"))

    def test_cached_between_calls(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        first = candidates.values_for(ColumnRef("movie", "title"))
        second = candidates.values_for(ColumnRef("movie", "title"))
        assert first is second


class TestEngineSeeding:
    def test_initial_with_predicate_pushes_down(self, env):
        from repro.db.query import eq

        database, catalog = env
        date = database.rows("screening")[0]["date"]
        seeded = CandidateSet.initial(
            database, catalog, "screening", where=eq("date", date)
        )
        unconstrained = CandidateSet.initial(database, catalog, "screening")
        manual = unconstrained.refine(ColumnRef("screening", "date"), date)
        assert 0 < len(seeded) < len(unconstrained)
        assert seeded.row_ids == manual.row_ids

    def test_index_refine_matches_value_map_path(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        # screening_id is hash-indexed: refine takes the planned index
        # path.  date is typed but the values_for path must agree.
        target = database.rows("screening")[3]
        by_index = candidates.refine(
            ColumnRef("screening", "screening_id"), target["screening_id"]
        )
        assert by_index.row_ids == (target["screening_id"],) or len(by_index) == 1
        by_values = candidates.refine(
            ColumnRef("screening", "date"), target["date"]
        )
        survivors = {
            row["screening_id"] for row in by_values.rows()
        }
        assert target["screening_id"] in survivors
        assert all(
            row["date"] == target["date"] for row in by_values.rows()
        )


class TestRefine:
    def test_refine_narrows(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        room = database.rows("screening")[0]["room"]
        refined = candidates.refine(ColumnRef("screening", "room"), room)
        assert 0 < len(refined) < len(candidates)

    def test_refine_is_immutable(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        before = len(candidates)
        candidates.refine(ColumnRef("screening", "room"), "room A")
        assert len(candidates) == before

    def test_refine_records_constraint(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        refined = candidates.refine(ColumnRef("screening", "room"), "room A")
        assert len(refined.constraints) == 1
        assert str(refined.constraints[0].attribute) == "screening.room"

    def test_refine_via_join(self, env):
        database, catalog = env
        title = database.rows("movie")[0]["title"]
        candidates = CandidateSet.initial(database, catalog, "screening")
        refined = candidates.refine(ColumnRef("movie", "title"), title)
        movie_id = database.find_one("movie", "title", title)["movie_id"]
        for row in refined.rows():
            assert row["movie_id"] == movie_id

    def test_text_matching_case_insensitive(self, env):
        database, catalog = env
        title = database.rows("movie")[0]["title"]
        candidates = CandidateSet.initial(database, catalog, "movie")
        refined = candidates.refine(ColumnRef("movie", "title"), title.upper())
        assert len(refined) >= 1

    def test_text_matching_fuzzy(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "movie")
        refined = candidates.refine(ColumnRef("movie", "title"), "Forrest Gmup")
        assert any(r["title"] == "Forrest Gump" for r in refined.rows())

    def test_contradiction_empties(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "movie")
        refined = candidates.refine(ColumnRef("movie", "year"), 1)
        assert refined.is_empty

    def test_typed_coercion(self, env):
        database, catalog = env
        year = database.rows("movie")[0]["year"]
        candidates = CandidateSet.initial(database, catalog, "movie")
        refined = candidates.refine(ColumnRef("movie", "year"), str(year))
        assert len(refined) >= 1

    def test_the_row_requires_unique(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "movie")
        with pytest.raises(PolicyError):
            candidates.the_row()

    def test_reset_restores_full_set(self, env):
        database, catalog = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        refined = candidates.refine(ColumnRef("screening", "room"), "room A")
        assert len(refined.reset()) == len(candidates)


class TestSharedCache:
    def test_same_results_with_cache(self, env):
        database, catalog = env
        cache = AttributeValueCache(database, catalog)
        plain = CandidateSet.initial(database, catalog, "screening")
        cached = CandidateSet.initial(database, catalog, "screening",
                                      shared_cache=cache)
        attribute = ColumnRef("movie", "title")
        assert plain.values_for(attribute) == cached.values_for(attribute)

    def test_cache_hit_statistics(self, env):
        database, catalog = env
        cache = AttributeValueCache(database, catalog)
        attribute = ColumnRef("movie", "title")
        a = CandidateSet.initial(database, catalog, "screening",
                                 shared_cache=cache)
        a.values_for(attribute)
        b = a.refine(ColumnRef("screening", "room"), "room A")
        b.values_for(attribute)
        # Two distinct attributes were materialised (title + the room used
        # by refine); the second title access is served from the cache.
        assert cache.misses == 2
        assert cache.hits == 1

    def test_cache_invalidated_on_write(self, env):
        database, catalog = env
        cache = AttributeValueCache(database, catalog)
        attribute = ColumnRef("screening", "room")
        CandidateSet.initial(
            database, catalog, "screening", shared_cache=cache
        ).values_for(attribute)
        database.insert(
            "screening",
            {"screening_id": 9999, "movie_id": 1, "date": "2022-04-01",
             "start_time": "20:00", "room": "room Z", "price": 10.0,
             "capacity": 10},
        )
        fresh = CandidateSet.initial(
            database, catalog, "screening", shared_cache=cache
        )
        values = fresh.values_for(attribute)
        assert any("room Z" in v for v in values.values())


class TestRefineProperties:
    @given(st.sampled_from(["room A", "room B", "room C", "nonexistent"]))
    @settings(max_examples=20)
    def test_refine_monotone(self, value):
        # hypothesis cannot combine with fixtures; build a DB inline.
        from repro.datasets import MovieConfig, build_movie_database

        database, __ = build_movie_database(MovieConfig(
            n_customers=10, n_movies=5, n_screenings=15, n_reservations=5,
            extra_dimensions=0, n_actors=6,
        ))
        catalog = Catalog(database)
        candidates = CandidateSet.initial(database, catalog, "screening")
        refined = candidates.refine(ColumnRef("screening", "room"), value)
        assert len(refined) <= len(candidates)
        assert set(refined.row_ids) <= set(candidates.row_ids)
