"""Tests for persisting the awareness model across sessions."""

import json

import pytest

from repro.dataaware import UserAwarenessModel
from repro.db import ColumnRef
from repro.errors import PolicyError


@pytest.fixture()
def model(movie_db):
    __, annotations = movie_db
    return annotations, UserAwarenessModel(annotations)


class TestPersistence:
    def test_roundtrip_preserves_probabilities(self, model):
        annotations, first = model
        attribute = ColumnRef("screening", "room")
        for __ in range(15):
            first.observe(attribute, user_knew=False)
        payload = json.loads(json.dumps(first.to_dict()))

        second = UserAwarenessModel(annotations)
        second.load_observations(payload)
        assert second.probability(attribute) == pytest.approx(
            first.probability(attribute)
        )

    def test_load_merges_counts(self, model):
        annotations, first = model
        attribute = ColumnRef("movie", "genre")
        first.observe(attribute, True)
        second = UserAwarenessModel(annotations)
        second.observe(attribute, True)
        second.load_observations(first.to_dict())
        assert second.estimate(attribute).observations == 2

    def test_empty_model_serialises_empty(self, model):
        __, fresh = model
        assert fresh.to_dict() == {}

    def test_malformed_key_rejected(self, model):
        __, fresh = model
        with pytest.raises(PolicyError):
            fresh.load_observations({"nodot": [1, 0]})

    def test_cross_session_learning_effect(self, model):
        """Observations from 'previous sessions' shift a fresh model."""
        annotations, veteran = model
        attribute = ColumnRef("screening", "price")
        prior = UserAwarenessModel(annotations).probability(attribute)
        for __ in range(30):
            veteran.observe(attribute, user_knew=False)

        newcomer = UserAwarenessModel(annotations)
        newcomer.load_observations(veteran.to_dict())
        assert newcomer.probability(attribute) < prior
