"""Tests for the awareness model and attribute scoring."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataaware import (
    AttributeScorer,
    CandidateSet,
    InformativenessMeasure,
    UserAwarenessModel,
    weighted_entropy,
)
from repro.db import Catalog, ColumnRef
from repro.errors import PolicyError


@pytest.fixture()
def env(movie_db):
    database, annotations = movie_db
    return database, Catalog(database), annotations


class TestAwarenessModel:
    def test_prior_without_observations(self, env):
        database, catalog, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("movie", "title")
        prior = annotations.awareness_prior("movie", "title")
        assert model.probability(attribute) == pytest.approx(prior)

    def test_positive_observations_raise_probability(self, env):
        __, __, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("screening", "room")
        before = model.probability(attribute)
        for __ in range(20):
            model.observe(attribute, user_knew=True)
        assert model.probability(attribute) > before

    def test_negative_observations_lower_probability(self, env):
        __, __, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("movie", "title")
        before = model.probability(attribute)
        for __ in range(20):
            model.observe(attribute, user_knew=False)
        assert model.probability(attribute) < before

    def test_estimate_counts_observations(self, env):
        __, __, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("movie", "genre")
        model.observe(attribute, True)
        model.observe(attribute, False)
        estimate = model.estimate(attribute)
        assert estimate.observations == 2
        assert 0.0 < estimate.probability < 1.0

    def test_reset_forgets(self, env):
        __, __, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("movie", "genre")
        model.observe(attribute, False)
        model.reset()
        assert model.estimate(attribute).observations == 0

    def test_bad_prior_strength(self, env):
        __, __, annotations = env
        with pytest.raises(PolicyError):
            UserAwarenessModel(annotations, prior_strength=0)

    def test_probability_stays_in_unit_interval(self, env):
        __, __, annotations = env
        model = UserAwarenessModel(annotations)
        attribute = ColumnRef("customer", "city")
        for __ in range(100):
            model.observe(attribute, True)
        assert 0.0 < model.probability(attribute) < 1.0


class TestWeightedEntropy:
    def test_empty(self):
        assert weighted_entropy({}) == 0.0

    def test_uniform(self):
        assert weighted_entropy({"a": 1.0, "b": 1.0}) == pytest.approx(1.0)

    def test_matches_unweighted(self):
        from repro.db import entropy

        values = ["a", "a", "b", "c"]
        weights = {"a": 2.0, "b": 1.0, "c": 1.0}
        assert weighted_entropy(weights) == pytest.approx(entropy(values))

    @given(st.dictionaries(st.text("ab", min_size=1, max_size=3),
                           st.floats(0.01, 10), max_size=6, min_size=1))
    @settings(max_examples=50)
    def test_bounded_by_log_n(self, weights):
        assert weighted_entropy(weights) <= math.log2(len(weights)) + 1e-9


class TestScorer:
    def test_informativeness_in_unit_interval(self, env):
        database, catalog, annotations = env
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        candidates = CandidateSet.initial(database, catalog, "screening")
        for column in ("date", "room", "price"):
            value = scorer.informativeness(
                candidates, ColumnRef("screening", column)
            )
            assert 0.0 <= value <= 1.0

    def test_unique_column_maximises_informativeness(self, env):
        database, catalog, annotations = env
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        candidates = CandidateSet.initial(database, catalog, "customer")
        email = scorer.informativeness(candidates, ColumnRef("customer", "email"))
        city = scorer.informativeness(candidates, ColumnRef("customer", "city"))
        assert email > city
        assert email == pytest.approx(1.0)

    def test_constant_column_scores_zero(self, env):
        database, catalog, annotations = env
        # Make a constant column: all rooms identical.
        table = database.table("screening")
        for rid in table.row_ids():
            table.update(rid, {"room": "room X"})
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        candidates = CandidateSet.initial(database, catalog, "screening")
        assert scorer.informativeness(
            candidates, ColumnRef("screening", "room")
        ) == pytest.approx(0.0)

    def test_single_candidate_scores_zero(self, env):
        database, catalog, annotations = env
        candidates = CandidateSet.initial(database, catalog, "screening")
        lone = candidates.refine(
            ColumnRef("screening", "screening_id"),
            database.rows("screening")[0]["screening_id"],
        )
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        assert scorer.informativeness(
            lone, ColumnRef("screening", "date")
        ) == 0.0

    def test_score_multiplies_awareness(self, env):
        database, catalog, annotations = env
        awareness = UserAwarenessModel(annotations)
        scorer = AttributeScorer(awareness)
        candidates = CandidateSet.initial(database, catalog, "screening")
        attribute = ColumnRef("screening", "date")
        score = scorer.score(candidates, attribute)
        assert score.score == pytest.approx(
            score.informativeness * score.awareness
        )

    def test_use_awareness_false_ignores_it(self, env):
        database, catalog, annotations = env
        scorer = AttributeScorer(
            UserAwarenessModel(annotations), use_awareness=False
        )
        candidates = CandidateSet.initial(database, catalog, "screening")
        score = scorer.score(candidates, ColumnRef("screening", "date"))
        assert score.awareness == 1.0

    def test_rank_sorted_descending(self, env):
        database, catalog, annotations = env
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        candidates = CandidateSet.initial(database, catalog, "screening")
        attributes = [
            ColumnRef("screening", "date"),
            ColumnRef("screening", "room"),
            ColumnRef("movie", "title"),
        ]
        ranked = scorer.rank(candidates, attributes)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_measures_differ_but_agree_on_extremes(self, env):
        database, catalog, annotations = env
        candidates = CandidateSet.initial(database, catalog, "customer")
        awareness = UserAwarenessModel(annotations)
        email = ColumnRef("customer", "email")
        for measure in InformativenessMeasure:
            scorer = AttributeScorer(awareness, measure)
            assert scorer.informativeness(candidates, email) == pytest.approx(
                1.0, abs=0.01
            )

    def test_expected_candidates_after(self, env):
        database, catalog, annotations = env
        scorer = AttributeScorer(UserAwarenessModel(annotations))
        candidates = CandidateSet.initial(database, catalog, "customer")
        expected = scorer.expected_candidates_after(
            candidates, ColumnRef("customer", "email")
        )
        # A unique attribute identifies in one step.
        assert expected == pytest.approx(1.0)
        expected_city = scorer.expected_candidates_after(
            candidates, ColumnRef("customer", "city")
        )
        assert expected_city > expected
