"""Tests for relative-date understanding and cross-entity buffering."""

import datetime as dt

import pytest

from repro.agent import ConversationSession
from repro.annotation import TaskExtractor
from repro.db import Catalog
from repro.nlu import EntityLinker
from repro.synthesis import SlotVocabulary

REFERENCE = dt.date(2022, 3, 26)


@pytest.fixture()
def linker(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    vocabulary = SlotVocabulary.from_tasks(tasks, catalog)
    return EntityLinker(database, vocabulary, reference_date=REFERENCE)


class TestRelativeDates:
    def test_today(self, linker):
        linked = linker.link("screening_date", "today")
        assert linked is not None and linked.value == REFERENCE

    def test_tonight(self, linker):
        linked = linker.link("screening_date", "tonight")
        assert linked is not None and linked.value == REFERENCE

    def test_tomorrow(self, linker):
        linked = linker.link("screening_date", "tomorrow")
        assert linked.value == REFERENCE + dt.timedelta(days=1)

    def test_day_after_tomorrow(self, linker):
        linked = linker.link("screening_date", "the day after tomorrow")
        assert linked.value == REFERENCE + dt.timedelta(days=2)

    def test_embedded_in_sentence(self, linker):
        linked = linker.link("screening_date", "4 tickets for today please")
        assert linked.value == REFERENCE

    def test_absolute_dates_still_work(self, linker):
        linked = linker.link("screening_date", "2022-04-02")
        assert linked.value == dt.date(2022, 4, 2)

    def test_without_reference_uses_today(self, movie_tasks):
        database, annotations, catalog, tasks = movie_tasks
        vocabulary = SlotVocabulary.from_tasks(tasks, catalog)
        linker = EntityLinker(database, vocabulary)
        linked = linker.link("screening_date", "today")
        assert linked.value == dt.date.today()


class TestCrossEntityBuffering:
    def test_future_entity_constraint_survives(self, trained_agent):
        cat, agent = trained_agent
        agent.reset()
        database = agent._database
        customer = database.rows("customer")[0]
        title = None
        # A movie that actually has screenings in the fixture.
        for row in database.rows("screening"):
            movie = database.find_one("movie", "movie_id", row["movie_id"])
            title = movie["title"]
            break
        session = ConversationSession(agent)
        # Volunteer the movie title while the *customer* is being
        # identified; it must be applied when screening identification
        # starts.
        session.say(f"i want to buy 2 tickets for {title}")
        session.say(f"my email is {customer['email']}")
        ident = agent.state.identification
        if ident is not None and ident.candidates.table == "screening":
            constrained_tables = {
                c.attribute.table for c in ident.candidates.constraints
            }
            assert "movie" in constrained_tables
