"""Integration tests: full conversations with the synthesized agent.

These exercise the demo scenario of Section 5 (Figure 1): bookings,
cancellations, listings, aborts, corrections and misspellings.
"""

import pytest

from repro.agent import ConversationSession
from repro.dialogue import Phase


@pytest.fixture()
def session(trained_agent):
    __, agent = trained_agent
    agent.reset()
    return ConversationSession(agent)


def pick_customer(agent):
    return agent._database.rows("customer")[0]


def unique_screening_date(agent):
    """A (movie title, date) pair identifying exactly one screening."""
    from collections import Counter

    database = agent._database
    counts = Counter()
    for row in database.rows("screening"):
        movie = database.find_one("movie", "movie_id", row["movie_id"])
        counts[(movie["title"], row["date"], row["start_time"])] += 1
    for (title, date, time), count in counts.items():
        if count == 1:
            return title, date, time
    pytest.fail("no unique screening in fixture")


class TestGreetingsAndChitchat:
    def test_greet(self, session):
        reply = session.say("hello")
        assert "Hello" in reply.text

    def test_goodbye(self, session):
        reply = session.say("goodbye")
        assert "Goodbye" in reply.text

    def test_thanks(self, session):
        reply = session.say("thank you")
        assert "welcome" in reply.text.lower()

    def test_gibberish_asks_rephrase(self, session):
        reply = session.say("qwe rty uio zxcvb")
        assert "rephrase" in reply.text.lower() or reply.text


class TestBookingFlow:
    def test_full_booking(self, session, trained_agent):
        __, agent = trained_agent
        customer = pick_customer(agent)
        title, date, time = unique_screening_date(agent)

        session.say("hello")
        session.say("i want to buy 2 tickets")
        # Provide full identification for the customer.
        session.say(f"my email is {customer['email']}")
        session.say(f"i want to watch {title}")
        reply = session.say(f"on {date.isoformat()} at {time.strftime('%H:%M')}")
        # Might already be confirmed or need a choice; drive to execution.
        if agent.state.phase is Phase.CHOOSING:
            reply = session.say("the first one")
        if agent.state.phase is Phase.CONFIRMING:
            reply = session.say("yes please")
        executed = session.executed_results()
        assert executed, session.format_transcript()
        assert executed[0].procedure == "ticket_reservation"
        assert executed[0].arguments["ticket_amount"] == 2
        assert executed[0].arguments["customer_id"] == customer["customer_id"]

    def test_booking_writes_to_database(self, session, trained_agent):
        __, agent = trained_agent
        database = agent._database
        before = database.count("reservation")
        customer = pick_customer(agent)
        title, date, time = unique_screening_date(agent)
        session.say("i want to buy 1 ticket")
        session.say(f"my email is {customer['email']}")
        session.say(f"the movie title is {title}")
        session.say(f"on {date.isoformat()} at {time.strftime('%H:%M')}")
        if agent.state.phase is Phase.CHOOSING:
            session.say("1")
        if agent.state.phase is Phase.CONFIRMING:
            session.say("yes")
        assert database.count("reservation") == before + 1

    def test_misspelled_title_corrected(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 2 tickets")
        reply = session.say("i want to watch forest gump")
        assert "Forrest Gump" in reply.text

    def test_deny_at_confirm_restarts(self, session, trained_agent):
        __, agent = trained_agent
        customer = pick_customer(agent)
        title, date, time = unique_screening_date(agent)
        session.say("i want to buy 2 tickets")
        session.say(f"my email is {customer['email']}")
        session.say(f"the movie title is {title}")
        session.say(f"on {date.isoformat()} at {time.strftime('%H:%M')}")
        if agent.state.phase is Phase.CHOOSING:
            session.say("1")
        if agent.state.phase is Phase.CONFIRMING:
            reply = session.say("no that is wrong")
            assert agent.state.phase in (Phase.GATHERING, Phase.CHOOSING)
            assert not session.executed_results()


class TestAbort:
    def test_abort_clears_task(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 3 tickets")
        reply = session.say("forget it")
        assert agent.state.task is None
        assert not session.executed_results()

    def test_abort_then_new_task(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 3 tickets")
        session.say("never mind")
        session.say("i want to buy 2 tickets")
        assert agent.state.task is not None
        assert agent.state.collected.get("ticket_amount") == 2


class TestListScreenings:
    def test_listing_executes_without_confirmation(self, session, trained_agent):
        __, agent = trained_agent
        database = agent._database
        title = database.rows("movie")[0]["title"]
        session.say(f"when is {title} playing")
        # Read-only task: executes as soon as the movie is identified.
        transcript = session.format_transcript()
        executed = session.executed_results()
        if not executed:
            # The movie may still need narrowing; answer one question.
            session.say(title)
            executed = session.executed_results()
        assert executed, transcript
        assert executed[0].procedure == "list_screenings"


class TestCancellation:
    def test_cancel_flow(self, session, trained_agent):
        __, agent = trained_agent
        database = agent._database
        reservation = database.rows("reservation")[0]
        customer = database.find_one(
            "customer", "customer_id", reservation["customer_id"]
        )
        before = database.count("reservation")
        session.say("i want to cancel my reservation")
        session.say(f"my email is {customer['email']}")
        for __ in range(6):
            if agent.state.phase is Phase.CHOOSING:
                session.say("the first one")
            elif agent.state.phase is Phase.CONFIRMING:
                session.say("yes")
            elif agent.state.task is None:
                break
            else:
                session.say("i do not know")
        if session.executed_results():
            assert database.count("reservation") == before - 1


class TestVolunteeredInformation:
    def test_info_before_task_is_buffered(self, session, trained_agent):
        __, agent = trained_agent
        database = agent._database
        title = database.rows("movie")[0]["title"]
        session.say(f"the movie title is {title}")
        session.say("i want to buy 2 tickets")
        # The buffered title must be applied once screening
        # identification starts; we simply require the conversation to
        # progress without re-asking for the title.
        transcript = session.format_transcript().lower()
        assert "rephrase" not in transcript.split("\n")[-1]

    def test_awareness_learns_from_dont_know(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 2 tickets")
        reply_text = session.transcript[-1].agent
        # Answer don't-know to whatever was asked; awareness must update.
        observed_before = len(agent.awareness.observed_attributes())
        session.say("i do not know")
        assert len(agent.awareness.observed_attributes()) >= observed_before
