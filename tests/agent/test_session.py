"""Tests for conversation sessions and transcripts."""

import pytest

from repro.agent import ConversationSession


@pytest.fixture()
def session(trained_agent):
    __, agent = trained_agent
    agent.reset()
    return ConversationSession(agent)


class TestSession:
    def test_transcript_records_turns(self, session):
        session.say("hello")
        session.say("goodbye")
        assert len(session.transcript) == 2
        assert session.transcript[0].user == "hello"
        assert session.transcript[0].intent == "greet"

    def test_format_transcript(self, session):
        session.say("hello")
        text = session.format_transcript()
        assert text.startswith("USER : hello")
        assert "AGENT:" in text

    def test_multiline_agent_reply_formatted(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 2 tickets")
        session.say("my name is alice")
        text = session.format_transcript()
        # A choice list (if presented) renders as separate AGENT lines.
        assert text.count("USER :") == 2

    def test_executed_results_empty_without_transaction(self, session):
        session.say("hello")
        assert session.executed_results() == []

    def test_restart_keeps_transcript(self, session, trained_agent):
        __, agent = trained_agent
        session.say("i want to buy 2 tickets")
        session.restart()
        assert agent.state.task is None
        assert len(session.transcript) == 1

    def test_agent_never_silent(self, session):
        for utterance in ("hello", "1", "yes", "maybe", "qqq zzz", "4"):
            reply = session.say(utterance)
            assert reply.text.strip(), f"silent reply to {utterance!r}"
