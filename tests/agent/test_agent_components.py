"""Tests for responder, executor and builder components."""

import pytest

from repro.agent import CAT, Responder, TransactionExecutor
from repro.annotation import TaskExtractor
from repro.db import Catalog
from repro.errors import SynthesisError


@pytest.fixture()
def env(movie_tasks):
    database, annotations, catalog, tasks = movie_tasks
    return database, annotations, catalog, tasks


class TestResponder:
    def test_ask_attribute_uses_display_name(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        from repro.db import ColumnRef

        text = responder.ask_attribute(ColumnRef("movie", "title"))
        assert "movie title" in text

    def test_describe_row_skips_pk(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        row = database.rows("customer")[0]
        description = responder.describe_row("customer", row)
        assert str(row["customer_id"]) not in description.split()[0]
        assert row["first_name"] in description

    def test_describe_row_resolves_fk(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        row = database.rows("screening")[0]
        description = responder.describe_row("screening", row)
        movie = database.find_one("movie", "movie_id", row["movie_id"])
        assert movie["title"] in description

    def test_propose_choices_numbered(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        rows = database.rows("customer")[:3]
        text = responder.propose_choices("customer", rows)
        assert "1." in text and "3." in text

    def test_listing_truncates(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        rows = [{"a": i} for i in range(15)]
        text = responder.listing(rows)
        assert "and 5 more" in text

    def test_listing_empty(self, env):
        database, annotations, __, __ = env
        responder = Responder(database, annotations)
        assert "no matching" in responder.listing([])


class TestExecutor:
    def test_execute_success(self, env):
        database, annotations, catalog, tasks = env
        task = next(t for t in tasks if t.name == "ticket_reservation")
        executor = TransactionExecutor(database)
        outcome = executor.execute(
            task,
            {"customer_id": 1, "screening_id": 1, "ticket_amount": 1},
        )
        assert outcome.success
        assert outcome.result.value["no_tickets"] == 1

    def test_execute_failure_is_captured(self, env):
        database, annotations, catalog, tasks = env
        task = next(t for t in tasks if t.name == "ticket_reservation")
        executor = TransactionExecutor(database)
        outcome = executor.execute(
            task,
            {"customer_id": 1, "screening_id": 1, "ticket_amount": 10_000},
        )
        assert not outcome.success
        assert "seats" in outcome.error

    def test_requires_confirmation_for_writes(self, env):
        database, annotations, catalog, tasks = env
        executor = TransactionExecutor(database)
        reserve = next(t for t in tasks if t.name == "ticket_reservation")
        listing = next(t for t in tasks if t.name == "list_screenings")
        assert executor.requires_confirmation(reserve)
        assert not executor.requires_confirmation(listing)


class TestBuilder:
    def test_requires_procedures(self, env):
        from repro.db import Column, Database, DatabaseSchema, DataType, TableSchema

        empty = Database(
            DatabaseSchema(
                [TableSchema("t", [Column("a", DataType.INTEGER)],
                             primary_key="a")]
            )
        )
        with pytest.raises(SynthesisError):
            CAT(empty)

    def test_report_before_synthesis_rejected(self, env):
        database, annotations, __, __ = env
        cat = CAT(database, annotations)
        with pytest.raises(SynthesisError):
            cat.report()

    def test_report_after_synthesis(self, trained_agent):
        cat, agent = trained_agent
        report = cat.report()
        assert report.n_tasks == 3
        assert report.n_nlu_examples > 100
        assert report.n_flows == 150
        assert "inform" in report.intents
        assert "identify_customer" in report.agent_actions
