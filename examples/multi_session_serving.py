"""Multi-session serving: one synthesized agent, many concurrent users.

Synthesizes the cinema agent once, then serves 8 interleaved
conversations from worker threads through a single
:class:`~repro.serving.AgentRuntime` — each session keeps its own
dialogue state and awareness model while sharing the trained models,
statistics and caches.

Run with::

    python examples/multi_session_serving.py
"""

import threading

from repro import CAT
from repro.datasets import build_movie_database, movie_templates

N_USERS = 8


def main() -> None:
    database, annotations = build_movie_database()
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())

    # Sessions idle for over an hour are reclaimed; beyond 10k live
    # sessions the least recently used one is evicted.
    runtime = cat.synthesize_runtime(session_ttl=3600.0, max_sessions=10_000)

    def user(index: int) -> None:
        sid = runtime.create_session(f"user-{index}")
        amount = index + 1
        runtime.respond(sid, "hello")
        runtime.respond(sid, f"i want to buy {amount} tickets")
        runtime.respond(sid, "my name is smith")
        runtime.respond(sid, "never mind, forget it")

    threads = [
        threading.Thread(target=user, args=(i,)) for i in range(N_USERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index in range(N_USERS):
        sid = f"user-{index}"
        print(f"--- {sid} " + "-" * 40)
        for turn in runtime.transcript(sid):
            print(f"USER : {turn.user}")
            for part in turn.agent.split("\n"):
                print(f"AGENT: {part}")

    stats = runtime.stats()
    print(
        f"\nserved {stats.turns_served} turns across "
        f"{stats.sessions_created} sessions "
        f"({stats.live_sessions} still live)"
    )


if __name__ == "__main__":
    main()
