"""The training-data generation pipeline of Figure 3, step by step.

Shows every artifact: extracted tasks and schema information, the
developer templates, the paraphrased variants, the filled & annotated
NLU examples, and the self-played DM flows.

Run with::

    python examples/training_data_pipeline.py
"""

from repro.annotation import TaskExtractor
from repro.datasets import build_movie_database, movie_templates
from repro.db import Catalog
from repro.synthesis import (
    GenerationConfig,
    Paraphraser,
    TrainingDataGenerator,
)


def main() -> None:
    database, annotations = build_movie_database()
    catalog = Catalog(database)

    print("=== 1. Extracted tasks and schema information ===")
    tasks = TaskExtractor(catalog, annotations).extract_all()
    for task in tasks:
        slots = ", ".join(
            f"{s.name} ({s.references[0]})" if s.references else
            f"{s.name} ({s.dtype})"
            for s in task.slots
        )
        print(f"  {task.name}: {slots}")
        for lookup in task.lookups:
            per_hop = {
                hop: [str(a) for a in attrs]
                for hop, attrs in lookup.identifying_attributes.items()
            }
            print(f"    identify {lookup.table} via {per_hop}")

    print("\n=== 2. Manually defined templates (the only manual input) ===")
    templates = movie_templates()
    for text in templates["inform"][:4]:
        print(f"  {text}")
    print(f"  ... ({sum(len(v) for v in templates.values())} total)")

    print("\n=== 3. Automated paraphrasing ===")
    paraphraser = Paraphraser()
    original = "i want to buy {ticket_amount} tickets"
    print(f"  original : {original}")
    for variant in paraphraser.variants(original):
        print(f"  variant  : {variant}")

    print("\n=== 4. Generated NLU training data ===")
    generator = TrainingDataGenerator(
        database, catalog, tasks, GenerationConfig(samples_per_template=4)
    )
    for intent, texts in templates.items():
        generator.add_templates(intent, texts)
    nlu_data = generator.generate_nlu()
    print(f"  {len(nlu_data)} annotated utterances, "
          f"intents: {nlu_data.intents()}")
    for example in nlu_data.examples[:3]:
        print(f"  {example.text!r} -> intent: {example.intent}; "
              f"slots: {example.slot_values()}")

    print("\n=== 5. Generated DM training data (dialogue self-play) ===")
    flows = generator.generate_flows()
    print(f"  {len(flows)} dialogue flows, "
          f"agent actions: {flows.agent_actions()}")
    flow = flows.flows[0]
    print(f"  example flow ({flow.task}):")
    for turn in flow.turns:
        print(f"    {turn.speaker}: {turn.action}")


if __name__ == "__main__":
    main()
