"""Quickstart: synthesize an agent and hold the Figure 1 conversation.

Run with::

    python examples/quickstart.py
"""

from repro import CAT, ConversationSession
from repro.datasets import build_movie_database, movie_templates
from repro.db import Param, api, select
from repro.db.aggregation import sum_
from repro.db.query import eq


def main() -> None:
    # 1. An OLTP database with stored procedures (the cinema of Figure 3).
    database, annotations = build_movie_database()

    # 2. Synthesize the agent: the only manual inputs are the schema
    #    annotations (already bundled with the dataset) and a handful of
    #    NL templates per intent.
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())
    agent = cat.synthesize()
    report = cat.report()
    print(
        f"synthesized agent: {report.n_tasks} tasks, "
        f"{report.n_nlu_examples} NLU examples, {report.n_flows} dialogue "
        f"flows\n"
    )

    # 3. Talk to it (the exemplary dialogue of Figure 1).
    session = ConversationSession(agent)
    for utterance in [
        "hello",
        "I want to buy 4 tickets for today",
        "my name is alice",
        "my last name is quandt",
        "i want to watch forest gump",   # misspelled on purpose
        "the first one",
        "yes please",
        "thanks, goodbye",
    ]:
        session.say(utterance)
    print(session.format_transcript())

    executed = session.executed_results()
    if executed:
        print(f"\nexecuted transactions: {[r.procedure for r in executed]}")

    # 4. Inspect the database through the unified execution API:
    #    connect -> prepare -> execute -> stream.  The statement is
    #    compiled once; each execute just binds its parameters.
    conn = database.connect()
    reservations = conn.prepare(
        select("reservation").where(eq("screening_id", Param("s")))
    )
    booked = conn.prepare(
        api.aggregate("reservation", seats=sum_("no_tickets")).where(
            eq("screening_id", Param("s"))
        )
    )
    for screening in conn.execute(select("screening").limit(3)):
        sid = screening["screening_id"]
        rows = reservations.execute(s=sid).all()
        seats = booked.execute(s=sid).scalar()
        print(
            f"screening {sid}: {len(rows)} reservations, {seats} seats booked"
        )
    stats = conn.stats()
    print(
        f"connection stats: {stats.executions} statements executed, "
        f"plan cache {stats.plan_cache_hits}/{stats.plan_cache_hits + stats.plan_cache_misses} hits"
    )


if __name__ == "__main__":
    main()
