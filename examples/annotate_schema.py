"""Schema annotation workflow (the Figure 4 GUI, as code).

Walks the schema exactly like CAT's GUI does: every table, every
attribute, with the current default annotation shown, then applies the
developer's choices and saves the annotation file.

Run with::

    python examples/annotate_schema.py            # non-interactive demo
    python examples/annotate_schema.py --interactive
"""

import json
import sys

from repro.annotation import SchemaAnnotations
from repro.datasets import MovieConfig, build_movie_database
from repro.db import Database


def show_schema(database: Database, annotations: SchemaAnnotations) -> None:
    for table in database.schema:
        print(f"\ntable {table.name} ({len(database.table(table.name))} rows)")
        for column in table.columns:
            annotation = annotations.get(table.name, column.name)
            flags = []
            if table.primary_key == column.name:
                flags.append("PK")
            if table.foreign_key_for(column.name):
                flags.append("FK")
            if annotation.never_ask:
                flags.append("never-ask")
            print(
                f"  {column.name:<18} {str(column.dtype):<8} "
                f"awareness={annotation.awareness_prior:<4} "
                f"{' '.join(flags)}"
            )


def annotate_interactively(
    database: Database, annotations: SchemaAnnotations
) -> None:
    print("\nEnter annotations as: <table> <column> <prior 0..1> "
          "[never_ask] — empty line to finish")
    while True:
        line = input("> ").strip()
        if not line:
            return
        parts = line.split()
        if len(parts) < 3:
            print("  need: table column prior [never_ask]")
            continue
        table, column, prior = parts[0], parts[1], float(parts[2])
        never_ask = len(parts) > 3 and parts[3] == "never_ask"
        try:
            annotations.annotate(table, column, awareness_prior=prior,
                                 never_ask=never_ask)
            print(f"  annotated {table}.{column}")
        except Exception as exc:  # show the problem, keep the loop alive
            print(f"  error: {exc}")


def main() -> None:
    database, __ = build_movie_database(MovieConfig())
    annotations = SchemaAnnotations(database)

    print("=== Schema with default annotations (IDs auto-flagged) ===")
    show_schema(database, annotations)

    if "--interactive" in sys.argv:
        annotate_interactively(database, annotations)
    else:
        print("\n=== Applying the demo annotations programmatically ===")
        annotations.annotate("movie", "title", awareness_prior=0.9,
                             display_name="movie title")
        annotations.annotate("customer", "email", awareness_prior=0.45)
        annotations.annotate("screening", "capacity", never_ask=True)

    print("\n=== Final explicit annotations (saved to annotations.json) ===")
    payload = annotations.to_dict()
    print(json.dumps(payload, indent=2))
    with open("annotations.json", "w") as handle:
        json.dump(payload, handle, indent=2)
    # The file round-trips: SchemaAnnotations.from_dict(db, payload).


if __name__ == "__main__":
    main()
