"""Domain transfer: synthesize an agent for a *hotel* database.

The paper's motivation: "neither the training dialogues nor the
integration with the existing database can be reused for a different
domain" in classic dialogue systems.  With CAT, moving to a new domain
is: declare the schema, register the transaction, annotate a few
attributes, write a handful of templates — and synthesize.  This example
does exactly that for a hotel-booking domain, entirely through the
public API (no code in ``repro`` knows about hotels).

Run with::

    python examples/hotel_demo.py
"""

import datetime as dt
import random

from repro import CAT, ConversationSession
from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    ForeignKey,
    Parameter,
    Procedure,
    TableSchema,
)
from repro.errors import ProcedureError

CITIES = ["Darmstadt", "Frankfurt", "Heidelberg", "Mainz", "Wiesbaden"]
HOTEL_NAMES = ["Grand Plaza", "River Lodge", "Park Vista", "Old Mill Inn",
               "Sky Garden", "Station Court", "Castle View", "Linden Hof"]
ROOM_TYPES = ["single", "double", "suite", "family room"]
FIRST = ["Anna", "Bruno", "Carla", "Dario", "Elif", "Frida", "Gero", "Hana"]
LAST = ["Keller", "Lang", "Moser", "Neri", "Okafor", "Petrov", "Quast",
        "Rossi"]


def build_hotel_database(seed: int = 21) -> Database:
    rng = random.Random(seed)
    schema = DatabaseSchema(
        [
            TableSchema(
                "hotel",
                [
                    Column("hotel_id", DataType.INTEGER),
                    Column("name", DataType.TEXT, nullable=False),
                    Column("city", DataType.TEXT, nullable=False),
                    Column("stars", DataType.INTEGER),
                ],
                primary_key="hotel_id",
            ),
            TableSchema(
                "room",
                [
                    Column("room_id", DataType.INTEGER),
                    Column("hotel_id", DataType.INTEGER, nullable=False),
                    Column("room_type", DataType.TEXT, nullable=False),
                    Column("price", DataType.FLOAT),
                    Column("capacity", DataType.INTEGER, nullable=False),
                ],
                primary_key="room_id",
                foreign_keys=[ForeignKey("hotel_id", "hotel", "hotel_id")],
            ),
            TableSchema(
                "guest",
                [
                    Column("guest_id", DataType.INTEGER),
                    Column("first_name", DataType.TEXT, nullable=False),
                    Column("last_name", DataType.TEXT, nullable=False),
                    Column("email", DataType.TEXT, unique=True),
                ],
                primary_key="guest_id",
            ),
            TableSchema(
                "booking",
                [
                    Column("booking_id", DataType.INTEGER),
                    Column("guest_id", DataType.INTEGER, nullable=False),
                    Column("room_id", DataType.INTEGER, nullable=False),
                    Column("check_in", DataType.DATE, nullable=False),
                    Column("nights", DataType.INTEGER, nullable=False),
                ],
                primary_key="booking_id",
                foreign_keys=[
                    ForeignKey("guest_id", "guest", "guest_id"),
                    ForeignKey("room_id", "room", "room_id"),
                ],
            ),
        ]
    )
    database = Database(schema)
    for hotel_id, name in enumerate(HOTEL_NAMES, start=1):
        database.insert(
            "hotel",
            {"hotel_id": hotel_id, "name": name,
             "city": rng.choice(CITIES), "stars": rng.randint(2, 5)},
        )
    room_id = 1
    for hotel_id in range(1, len(HOTEL_NAMES) + 1):
        for __ in range(8):
            database.insert(
                "room",
                {"room_id": room_id, "hotel_id": hotel_id,
                 "room_type": rng.choice(ROOM_TYPES),
                 "price": round(rng.uniform(60, 240)),
                 "capacity": rng.randint(1, 5)},
            )
            room_id += 1
    guest_id = 1
    for first in FIRST:
        for last in LAST:
            database.insert(
                "guest",
                {"guest_id": guest_id, "first_name": first,
                 "last_name": last,
                 "email": f"{first.lower()}.{last.lower()}@example.com"},
            )
            guest_id += 1

    def book_room(db, guest_id, room_id, check_in, nights):
        if nights <= 0:
            raise ProcedureError("nights must be positive")
        # Overlap check through the unified execution API: the
        # statement compiles once, every booking binds its room id.
        from repro.db import Param, select
        from repro.db.query import eq

        taken = db.default_connection.prepare_cached(
            ("hotel.room_bookings",),
            lambda: select("booking").where(eq("room_id", Param("room"))),
        ).execute(room=room_id)
        for other in taken:
            delta = (check_in - other["check_in"]).days
            if -nights < delta < other["nights"]:
                raise ProcedureError("room is occupied in that period")
        booking_id = max(
            db.table("booking").column_values("booking_id"), default=0
        ) + 1
        db.insert(
            "booking",
            {"booking_id": booking_id, "guest_id": guest_id,
             "room_id": room_id, "check_in": check_in, "nights": nights},
        )
        return {"booking_id": booking_id, "nights": nights}

    database.procedures.register(
        Procedure(
            name="book_room",
            parameters=[
                Parameter("guest_id", DataType.INTEGER,
                          references=("guest", "guest_id")),
                Parameter("room_id", DataType.INTEGER,
                          references=("room", "room_id")),
                Parameter("check_in", DataType.DATE),
                Parameter("nights", DataType.INTEGER),
            ],
            body=book_room,
            description="book a hotel room",
            writes=("booking",),
        )
    )
    return database


def hotel_templates() -> dict[str, list[str]]:
    return {
        "request_book_room": [
            "i want to book a room",
            "i need a {room_type} for {nights} nights",
            "book me a room in {hotel_city}",
            "i would like to reserve a {room_type}",
            "can i get a room at the {hotel_name}",
        ],
        "inform": [
            "my name is {guest_first_name} {guest_last_name}",
            "my email is {guest_email}",
            "a {room_type} please",
            "the room type is {room_type}",
            "in {hotel_city}",
            "at the {hotel_name}",
            "the hotel is called {hotel_name}",
            "checking in on {check_in}",
            "for {nights} nights",
            "{nights} nights",
        ],
    }


def main() -> None:
    database = build_hotel_database()
    cat = CAT(database, reference_date=dt.date(2022, 6, 1))
    # The only domain-specific inputs: a few annotations and templates.
    cat.annotations.annotate("hotel", "name", awareness_prior=0.8,
                             display_name="hotel name")
    cat.annotations.annotate("hotel", "city", awareness_prior=0.95)
    cat.annotations.annotate("room", "room_type", awareness_prior=0.9,
                             display_name="room type")
    cat.annotations.annotate("room", "price", awareness_prior=0.2)
    cat.annotations.annotate("room", "capacity", awareness_prior=0.5)
    cat.annotations.annotate("guest", "email", awareness_prior=0.5)
    cat.add_template_catalog(hotel_templates())

    print("synthesizing the hotel agent ...")
    agent = cat.synthesize()
    report = cat.report()
    print(f"tasks: {report.n_tasks}, NLU examples: {report.n_nlu_examples}, "
          f"flows: {report.n_flows}\n")

    # Pick a target room and let a simulated guest answer whatever the
    # data-aware policy decides to ask (values read off the target).
    target_room = database.rows("room")[0]
    target_hotel = database.find_one("hotel", "hotel_id",
                                     target_room["hotel_id"])
    answers = {
        ("room", "room_type"): f"a {target_room['room_type']}",
        ("room", "price"): str(target_room["price"]),
        ("room", "capacity"): str(target_room["capacity"]),
        ("hotel", "name"): f"the hotel is called {target_hotel['name']}",
        ("hotel", "city"): f"in {target_hotel['city']}",
        ("hotel", "stars"): str(target_hotel["stars"]),
    }

    from repro.dialogue import Phase

    session = ConversationSession(agent)
    session.say("hello")
    session.say("i want to book a room")
    session.say("my email is anna.keller@example.com")
    for __ in range(12):
        if agent.state.task is None:
            break
        if agent.state.phase is Phase.CHOOSING:
            session.say("the first one")
        elif agent.state.phase is Phase.CONFIRMING:
            session.say("yes please")
        elif agent.state.current_slot == "check_in":
            session.say("checking in on 2022-06-03")
        elif agent.state.current_slot == "nights":
            session.say("3 nights")
        else:
            ident = agent.state.identification
            question = ident.pending_question if ident else None
            if question is None:
                break
            key = (question.table, question.column)
            session.say(answers.get(key, "i do not know"))
    print(session.format_transcript())
    executed = session.executed_results()
    if executed:
        print(f"\nexecuted: {[r.procedure for r in executed]}")


if __name__ == "__main__":
    main()
