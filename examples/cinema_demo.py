"""The full demonstration scenario of Section 5.

Synthesizes the cinema agent and exercises all three transactions —
reserving tickets, cancelling a reservation and listing screenings —
plus the demo-video behaviours: misspelling correction, choice lists and
abort handling.  Pass ``--chat`` for an interactive REPL.

Run with::

    python examples/cinema_demo.py
    python examples/cinema_demo.py --chat
"""

import sys

from repro import CAT, ConversationSession
from repro.datasets import build_movie_database, movie_templates
from repro.db import Param, select
from repro.db.query import eq


def build_agent():
    database, annotations = build_movie_database()
    cat = CAT(database, annotations)
    cat.add_template_catalog(movie_templates())
    agent = cat.synthesize()
    return database, agent


def scripted_demo(database, agent) -> None:
    def scenario(title, utterances):
        agent.reset()
        session = ConversationSession(agent)
        print(f"\n===== {title} =====")
        for utterance in utterances:
            session.say(utterance)
        print(session.format_transcript())
        executed = session.executed_results()
        if executed:
            print(f"-> executed: {[r.procedure for r in executed]}")

    scenario(
        "Scenario 1: reserve tickets (with misspelling correction)",
        [
            "hello",
            "i want to buy 2 tickets",
            "my name is alice",
            "my last name is quandt",
            "i want to watch forest gump",
            "the first one",
            "yes please",
        ],
    )

    # Read through the unified execution API: one connection, prepared
    # statements with named parameters, streaming results.
    conn = database.connect()
    reservation = conn.execute(select("reservation").limit(1)).fetchone()
    customer = conn.prepare(
        select("customer").where(eq("customer_id", Param("c"))).limit(1)
    ).execute(c=reservation["customer_id"]).fetchone()
    scenario(
        "Scenario 2: cancel a reservation",
        [
            "i need to cancel my reservation",
            f"my email is {customer['email']}",
            "1",
            "yes",
        ],
    )

    title = conn.execute(select("movie").project("title")).fetchmany(3)[2]["title"]
    scenario(
        "Scenario 3: list screenings (read-only, no confirmation)",
        [f"when is {title} playing"],
    )

    scenario(
        "Scenario 4: abort mid-task",
        [
            "i want to buy 5 tickets",
            "actually forget it",
            "goodbye",
        ],
    )


def interactive_chat(agent) -> None:
    print("Chat with the cinema agent (ctrl-d or 'quit' to leave).")
    session = ConversationSession(agent)
    while True:
        try:
            text = input("you> ").strip()
        except EOFError:
            break
        if not text or text.lower() in ("quit", "exit"):
            break
        reply = session.say(text)
        for line in reply.text.split("\n"):
            print(f"bot> {line}")


def main() -> None:
    print("synthesizing the cinema agent (trains NLU + DM) ...")
    database, agent = build_agent()
    if "--chat" in sys.argv:
        interactive_chat(agent)
    else:
        scripted_demo(database, agent)


if __name__ == "__main__":
    main()
