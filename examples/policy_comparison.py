"""Compare the data-aware policy against the static and random baselines.

A compact version of the Section 4 evaluation (see
``benchmarks/bench_policy_turns.py`` for the full sweep): simulated
users identify screenings under each slot-selection strategy and we
report the interaction-turn statistics.

Run with::

    python examples/policy_comparison.py
"""

from repro.annotation import TaskExtractor
from repro.dataaware import (
    DataAwarePolicy,
    RandomPolicy,
    StaticPolicy,
    UserAwarenessModel,
)
from repro.datasets import MovieConfig, build_movie_database
from repro.db import Catalog, StatisticsCatalog
from repro.eval import PolicyExperiment, ResultTable


def main() -> None:
    config = MovieConfig(
        n_customers=100, n_movies=80, n_screenings=600,
        n_reservations=60, n_actors=80, extra_dimensions=6, n_days=30,
    )
    database, annotations = build_movie_database(config)
    catalog = Catalog(database)
    task = TaskExtractor(catalog, annotations).extract(
        database.procedures.get("ticket_reservation")
    )
    lookup = task.lookup_for("screening_id")

    experiment = PolicyExperiment(database, catalog, annotations, lookup)
    policies = {
        "data_aware": DataAwarePolicy(
            lookup, UserAwarenessModel(annotations),
            StatisticsCatalog(database),
        ),
        "static": StaticPolicy.train(lookup, database, catalog, annotations),
        "random": RandomPolicy(lookup, seed=7),
    }

    table = ResultTable(
        f"Identifying one of {database.count('screening')} screenings "
        f"({config.extra_dimensions} joinable dimensions), 40 episodes",
        ["policy", "mean_turns", "median", "p90", "success"],
    )
    summaries = {}
    for name, policy in policies.items():
        summary, __ = experiment.run(policy, n_episodes=40)
        summaries[name] = summary
        table.add_row(name, summary.mean_turns, summary.median_turns,
                      summary.p90_turns, summary.success_rate)
    table.show()

    speedup = summaries["data_aware"].speedup_vs(summaries["random"])
    print(f"data-aware speedup over random: {speedup:.0%} fewer turns")


if __name__ == "__main__":
    main()
